//! Cluster-Margin sampling (Citovsky et al., NeurIPS 2021) — the prototype's
//! default active-learning acquisition function.
//!
//! Cluster-Margin combines uncertainty and diversity: take the `k_m · B`
//! unlabeled candidates with the smallest prediction margin (difference
//! between the top-two class probabilities), group them into clusters in
//! feature space, and pick candidates round-robin across clusters in
//! ascending-cluster-size order so no single dense region dominates the
//! batch. The original paper clusters once with HAC; this implementation
//! uses a small deterministic k-means over the margin-filtered set, which
//! serves the same purpose at VOCALExplore's candidate-set sizes. The
//! margin-filtered pool is gathered into a contiguous [`FeatureBlock`] so
//! the k-means assign step is one blocked, parallel nearest-centroid sweep.

use ve_ml::{argmax_chunked, FeatureBlock, FeatureBlockBuilder};

/// Configuration for Cluster-Margin.
#[derive(Debug, Clone, Copy)]
pub struct ClusterMarginConfig {
    /// Margin-pool multiplier: the `k_m · budget` lowest-margin candidates
    /// enter the clustering stage (paper uses a pool ~10× the batch).
    pub margin_pool_multiplier: usize,
    /// Number of clusters used for the diversity stage, as a multiple of the
    /// budget (clamped to the pool size).
    pub clusters_per_budget: usize,
    /// k-means iterations (small and fixed; exactness is not required).
    pub kmeans_iters: usize,
}

impl Default for ClusterMarginConfig {
    fn default() -> Self {
        Self {
            margin_pool_multiplier: 10,
            clusters_per_budget: 2,
            kmeans_iters: 10,
        }
    }
}

/// Selects `budget` candidate indices with Cluster-Margin sampling.
///
/// * `features` — candidate feature block (one row per candidate).
/// * `probs` — per-candidate class-probability block from the latest model
///   (`features.rows()` rows). When the model has not been trained yet
///   (empty block, or fewer than two probability columns), the margin stage
///   degenerates to treating every candidate as maximally uncertain, leaving
///   a purely diversity-driven selection.
///
/// # Panics
/// Panics if `probs` is non-empty but has a different row count than
/// `features`.
pub fn cluster_margin_selection(
    features: &FeatureBlock,
    probs: &FeatureBlock,
    budget: usize,
    cfg: &ClusterMarginConfig,
) -> Vec<usize> {
    if features.is_empty() || budget == 0 {
        return Vec::new();
    }
    if !probs.is_empty() {
        assert_eq!(
            probs.rows(),
            features.rows(),
            "probability rows must match candidates"
        );
    }

    // Stage 1: margin filtering.
    let margins = margins_of(probs, features.rows());
    let pool_size = (cfg.margin_pool_multiplier.max(1) * budget).min(features.rows());
    let mut order: Vec<usize> = (0..features.rows()).collect();
    order.sort_by(|&a, &b| margins[a].partial_cmp(&margins[b]).expect("NaN margin"));
    let pool: Vec<usize> = order.into_iter().take(pool_size).collect();

    // Stage 2: cluster the pool for diversity. The pool rows are gathered
    // into their own contiguous block once; every k-means pass then streams
    // that block.
    let k = (cfg.clusters_per_budget.max(1) * budget)
        .min(pool.len())
        .max(1);
    let pool_block = features.gather(&pool);
    let assignments = kmeans_assign(&pool_block, k, cfg.kmeans_iters);

    // Stage 3: round-robin over clusters, ascending by cluster size, picking
    // the lowest-margin unpicked member of each cluster.
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (pool_pos, &cand_idx) in pool.iter().enumerate() {
        clusters[assignments[pool_pos]].push(cand_idx);
    }
    for cluster in &mut clusters {
        cluster.sort_by(|&a, &b| margins[a].partial_cmp(&margins[b]).expect("NaN margin"));
    }
    clusters.retain(|c| !c.is_empty());
    clusters.sort_by_key(|c| c.len());

    round_robin(&clusters, budget.min(pool.len()))
}

/// Ascending-size round-robin pick of up to `take` members.
pub(crate) fn round_robin(clusters: &[Vec<usize>], take: usize) -> Vec<usize> {
    let mut selected = Vec::with_capacity(take);
    let mut cursor = vec![0usize; clusters.len()];
    while selected.len() < take {
        let mut progressed = false;
        for (ci, cluster) in clusters.iter().enumerate() {
            if selected.len() >= take {
                break;
            }
            if cursor[ci] < cluster.len() {
                selected.push(cluster[cursor[ci]]);
                cursor[ci] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    selected
}

/// Per-candidate margins from a probability block; rows with fewer than two
/// classes (or a missing model) count as maximally uncertain (margin 0).
pub(crate) fn margins_of(probs: &FeatureBlock, n: usize) -> Vec<f64> {
    if probs.is_empty() || probs.dim() < 2 {
        return vec![0.0; n];
    }
    (0..n).map(|i| margin(probs.row(i))).collect()
}

/// Margin of a probability vector: difference between its two largest values.
/// A vector with fewer than two entries is treated as fully confident (its
/// single probability is the margin).
fn margin(p: &[f32]) -> f64 {
    let mut top = f32::NEG_INFINITY;
    let mut second = 0.0f32;
    for &v in p {
        if v > top {
            second = if top.is_finite() { top } else { 0.0 };
            top = v;
        } else if v > second {
            second = v;
        }
    }
    if !top.is_finite() {
        return 0.0;
    }
    (top - second).max(0.0) as f64
}

/// Deterministic k-means over a contiguous pool block; returns the cluster
/// assignment of each pool row. Initial centroids are chosen by a
/// farthest-point sweep (k-means++ without randomness) starting from row 0;
/// ties in both initialization and assignment go to the first (lowest) index.
fn kmeans_assign(pool: &FeatureBlock, k: usize, iters: usize) -> Vec<usize> {
    kmeans_fit(pool, k, iters).1
}

/// Deterministic k-means returning both the fitted centroids and the cluster
/// assignment of every pool row. The centroids are what the cluster-sketch
/// candidate reducer keeps alive across `Explore` calls (new rows are
/// assigned incrementally with [`FeatureBlock::nearest_rows`]); the
/// assignment alone is what [`cluster_margin_selection`]'s diversity stage
/// consumes. Identical arithmetic to the original `kmeans_assign`, so either
/// entry point produces the same clustering.
pub fn kmeans_fit(pool: &FeatureBlock, k: usize, iters: usize) -> (FeatureBlock, Vec<usize>) {
    let n = pool.rows();
    let k = k.min(n).max(1);
    if pool.dim() == 0 {
        // Degenerate zero-dimensional features: every distance is 0, so all
        // rows belong to the first centroid (first-index-wins), matching the
        // seed behaviour.
        return (FeatureBlock::empty(0), vec![0; n]);
    }

    // Farthest-point initialization: maintain, for every row, its squared
    // distance to the nearest chosen centroid; each step adds the first row
    // attaining the maximum (chunk-parallel argmax, first index wins). One
    // parallel distance pass per chosen centroid instead of the seed's
    // O(centroids · pool²) rescans.
    let mut centroid_rows = vec![0usize];
    let mut init_min = vec![0.0f32; n];
    pool.sq_distances_to(pool.row(0), &mut init_min);
    while centroid_rows.len() < k {
        let best = argmax_chunked(&init_min).unwrap_or(0);
        if centroid_rows.contains(&best) {
            break;
        }
        centroid_rows.push(best);
        pool.min_sq_distances_update(pool.row(best), &mut init_min);
    }

    let dim = pool.dim();
    let mut centroids = pool.gather(&centroid_rows);
    let mut assignment = vec![0usize; n];

    for _ in 0..iters.max(1) {
        // Assign: one blocked, parallel nearest-centroid sweep.
        assignment = pool.nearest_rows(&centroids);
        // Update.
        let mut sums = vec![0.0f32; centroids.rows() * dim];
        let mut counts = vec![0usize; centroids.rows()];
        for (pos, &a) in assignment.iter().enumerate() {
            counts[a] += 1;
            let row = pool.row(pos);
            let acc = &mut sums[a * dim..(a + 1) * dim];
            for (s, &v) in acc.iter_mut().zip(row) {
                *s += v;
            }
        }
        let mut next = FeatureBlockBuilder::with_capacity(centroids.rows(), dim);
        for (ci, chunk) in sums.chunks(dim.max(1)).enumerate().take(centroids.rows()) {
            if counts[ci] > 0 {
                let inv = 1.0 / counts[ci] as f32;
                let row: Vec<f32> = chunk.iter().map(|s| s * inv).collect();
                next.push_row(&row);
            } else {
                next.push_row(centroids.row(ci));
            }
        }
        centroids = next.build();
    }
    (centroids, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(rows: &[Vec<f32>]) -> FeatureBlock {
        FeatureBlock::from_nested(rows)
    }

    /// Candidates in two well-separated clusters with synthetic class
    /// probabilities: cluster A is certain, cluster B is uncertain.
    fn setup() -> (FeatureBlock, FeatureBlock) {
        let mut feats = Vec::new();
        let mut probs = Vec::new();
        for i in 0..10 {
            feats.push(vec![0.0 + i as f32 * 0.01, 0.0]);
            probs.push(vec![0.95, 0.05]); // confident
        }
        for i in 0..10 {
            feats.push(vec![10.0 + i as f32 * 0.01, 0.0]);
            probs.push(vec![0.52, 0.48]); // uncertain
        }
        (block(&feats), block(&probs))
    }

    #[test]
    fn prefers_low_margin_candidates() {
        let (feats, probs) = setup();
        // Use a margin pool of 2 × budget = 10 so the margin filter actually
        // bites with only 20 candidates (with the default 10× multiplier the
        // pool would be the whole candidate set).
        let cfg = ClusterMarginConfig {
            margin_pool_multiplier: 2,
            ..ClusterMarginConfig::default()
        };
        let picks = cluster_margin_selection(&feats, &probs, 5, &cfg);
        assert_eq!(picks.len(), 5);
        // Every pick must come from the uncertain cluster (indices 10..20):
        // the 10 lowest-margin candidates are exactly those.
        assert!(
            picks.iter().all(|&i| i >= 10),
            "all picks should be uncertain: {picks:?}"
        );
    }

    #[test]
    fn spreads_picks_across_clusters_when_margins_tie() {
        // All candidates equally uncertain -> diversity stage should spread
        // selections across the two spatial clusters.
        let mut feats = Vec::new();
        for i in 0..10 {
            feats.push(vec![0.0 + i as f32 * 0.01, 0.0]);
        }
        for i in 0..10 {
            feats.push(vec![10.0 + i as f32 * 0.01, 0.0]);
        }
        let probs = block(&vec![vec![0.5, 0.5]; 20]);
        // One cluster per budget slot: with k = 4 over two well-separated
        // blobs each blob owns at least one cluster, so the round-robin
        // stage *must* span both (at k = 2×budget the spread depends on how
        // k-means tie-breaks split the blobs, which is not a property worth
        // pinning down).
        let cfg = ClusterMarginConfig {
            clusters_per_budget: 1,
            ..ClusterMarginConfig::default()
        };
        let picks = cluster_margin_selection(&block(&feats), &probs, 4, &cfg);
        let left = picks.iter().filter(|&&i| i < 10).count();
        let right = picks.len() - left;
        assert!(
            left >= 1 && right >= 1,
            "picks should span both clusters: {picks:?}"
        );
    }

    #[test]
    fn works_without_model_probabilities() {
        let (feats, _) = setup();
        let picks = cluster_margin_selection(
            &feats,
            &FeatureBlock::empty(0),
            6,
            &ClusterMarginConfig::default(),
        );
        assert_eq!(picks.len(), 6);
        let unique: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(unique.len(), picks.len());
    }

    #[test]
    fn budget_larger_than_pool() {
        let (feats, probs) = setup();
        let picks = cluster_margin_selection(&feats, &probs, 100, &ClusterMarginConfig::default());
        assert_eq!(picks.len(), 20);
    }

    #[test]
    fn empty_inputs() {
        assert!(cluster_margin_selection(
            &FeatureBlock::empty(2),
            &FeatureBlock::empty(2),
            5,
            &ClusterMarginConfig::default()
        )
        .is_empty());
        let (feats, probs) = setup();
        assert!(
            cluster_margin_selection(&feats, &probs, 0, &ClusterMarginConfig::default()).is_empty()
        );
    }

    #[test]
    fn zero_dimensional_features_do_not_panic() {
        // Regression: the k-means update used to rebuild an empty centroid
        // set for dim-0 blocks and panic in the next assignment pass.
        let feats = FeatureBlock::from_vec(6, 0, Vec::new());
        let picks = cluster_margin_selection(
            &feats,
            &FeatureBlock::empty(0),
            3,
            &ClusterMarginConfig::default(),
        );
        assert_eq!(picks.len(), 3);
        let unique: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(unique.len(), picks.len());
    }

    #[test]
    fn margin_computation() {
        assert!((margin(&[0.7, 0.2, 0.1]) - 0.5).abs() < 1e-6);
        assert!((margin(&[0.5, 0.5]) - 0.0).abs() < 1e-6);
        // Single-entry vectors are treated as fully confident.
        assert!((margin(&[1.0]) - 1.0).abs() < 1e-6);
        // Empty vectors are treated as maximally uncertain.
        assert_eq!(margin(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "probability rows must match")]
    fn rejects_mismatched_probs() {
        cluster_margin_selection(
            &block(&[vec![0.0, 1.0], vec![1.0, 0.0]]),
            &block(&[vec![0.5, 0.5]]),
            1,
            &ClusterMarginConfig::default(),
        );
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn valid_unique_selections(
                n in 1usize..40,
                budget in 1usize..10,
                seed_vals in proptest::collection::vec(-5.0f32..5.0, 40 * 3),
            ) {
                let feats: Vec<Vec<f32>> = (0..n)
                    .map(|i| seed_vals[i * 3..i * 3 + 3].to_vec())
                    .collect();
                let picks = cluster_margin_selection(
                    &FeatureBlock::from_nested(&feats),
                    &FeatureBlock::empty(0),
                    budget,
                    &ClusterMarginConfig::default(),
                );
                prop_assert!(picks.len() <= budget.min(n));
                let unique: std::collections::HashSet<_> = picks.iter().collect();
                prop_assert_eq!(unique.len(), picks.len());
                prop_assert!(picks.iter().all(|&i| i < n));
            }
        }
    }
}
