//! Machine-readable acquisition benchmarks: writes `BENCH_acquisition.json`.
//!
//! Times the hot acquisition kernels at growing candidate-pool sizes and, for
//! HAC, against the seed repository's recompute-everything implementation, so
//! future PRs can track the perf trajectory from a stable JSON artifact:
//!
//! ```text
//! cargo run --release -p ve-bench --bin bench_acquisition [-- --quick]
//! ```
//!
//! `--quick` skips the (slow, ~tens of seconds) naive-HAC baseline and the
//! 20k pools; the emitted JSON marks skipped entries with `null`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;
use ve_al::{
    cluster_margin_selection, coreset_selection, hac_average_linkage, ClusterMarginConfig,
};
use ve_bench::emit::{Artifact, Value};
use ve_ml::FeatureBlock;

const DIM: usize = 64;
const BUDGET: usize = 5;
const HAC_N: usize = 1_000;
const HAC_TARGET: usize = 50;

fn make_pool(n: usize, seed: u64) -> (FeatureBlock, FeatureBlock) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut feats = Vec::with_capacity(n * DIM);
    for _ in 0..n * DIM {
        feats.push(rng.gen::<f32>() * 2.0 - 1.0);
    }
    let mut probs = Vec::with_capacity(n * 2);
    for _ in 0..n {
        let a: f32 = rng.gen();
        probs.push(a);
        probs.push(1.0 - a);
    }
    (
        FeatureBlock::from_vec(n, DIM, feats),
        FeatureBlock::from_vec(n, 2, probs),
    )
}

/// Median wall-clock nanoseconds of `runs` executions of `f`.
fn median_ns<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut times: Vec<f64> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

/// The seed implementation of average-linkage HAC, kept verbatim as the
/// benchmark baseline: recomputes every cluster-pair distance from member
/// pairs on every merge scan (O(n³)–O(n⁴) distance evaluations per run).
fn naive_hac(points: &FeatureBlock, num_clusters: usize) -> Vec<usize> {
    let n = points.rows();
    let target = num_clusters.min(n);
    let sq = |a: &[f32], b: &[f32]| -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum()
    };
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut active: Vec<bool> = vec![true; n];
    let mut num_active = n;
    while num_active > target {
        let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
        for i in 0..n {
            if !active[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !active[j] {
                    continue;
                }
                let mut total = 0.0f64;
                for &a in &members[i] {
                    for &b in &members[j] {
                        total += sq(points.row(a), points.row(b)) as f64;
                    }
                }
                let d = total / (members[i].len() * members[j].len()) as f64;
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let (i, j, _) = best;
        if i == usize::MAX {
            break;
        }
        let moved = std::mem::take(&mut members[j]);
        members[i].extend(moved);
        active[j] = false;
        num_active -= 1;
    }
    let mut assignment = vec![0usize; n];
    let mut next = 0usize;
    for (ci, cluster) in members.iter().enumerate() {
        if !active[ci] {
            continue;
        }
        for &p in cluster {
            assignment[p] = next;
        }
        next += 1;
    }
    assignment
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let pools: &[usize] = if quick {
        &[1_000, 5_000]
    } else {
        &[1_000, 5_000, 20_000]
    };

    let mut coreset_fields = Vec::new();
    let mut cm_fields = Vec::new();
    for &n in pools {
        let (feats, probs) = make_pool(n, 7);
        let labeled_idx: Vec<usize> = (0..20).collect();
        let labeled = feats.gather(&labeled_idx);
        let runs = if n >= 20_000 { 5 } else { 9 };
        let coreset_ns = median_ns(runs, || coreset_selection(&feats, &labeled, BUDGET));
        let cm_ns = median_ns(runs, || {
            cluster_margin_selection(&feats, &probs, BUDGET, &ClusterMarginConfig::default())
        });
        eprintln!(
            "pool {n:>6}: coreset {:.2} ms, cluster_margin {:.2} ms",
            coreset_ns / 1e6,
            cm_ns / 1e6
        );
        coreset_fields.push((n.to_string(), Value::f64(coreset_ns, 0)));
        cm_fields.push((n.to_string(), Value::f64(cm_ns, 0)));
    }

    let (hac_points, _) = make_pool(HAC_N, 11);
    let hac_ns = median_ns(3, || hac_average_linkage(&hac_points, HAC_TARGET));
    eprintln!("hac (Lance-Williams) n={HAC_N}: {:.2} ms", hac_ns / 1e6);
    let naive_ns = if quick {
        None
    } else {
        // Sanity-check equivalence on the benchmark input, then time the
        // seed implementation once (it is far too slow to repeat).
        let fast = hac_average_linkage(&hac_points, HAC_TARGET);
        let start = Instant::now();
        let slow = naive_hac(&hac_points, HAC_TARGET);
        let ns = start.elapsed().as_nanos() as f64;
        assert_eq!(fast, slow, "optimized HAC must match the seed selection");
        eprintln!("hac (seed baseline)  n={HAC_N}: {:.2} ms", ns / 1e6);
        Some(ns)
    };
    let speedup = naive_ns.map(|n| n / hac_ns);
    if let Some(s) = speedup {
        eprintln!("hac speedup: {s:.1}x");
    }

    Artifact::new("vocalexplore/bench_acquisition/v1", quick)
        .field("dim", Value::usize(DIM))
        .field("budget", Value::usize(BUDGET))
        .field(
            "median_ns",
            Value::obj([
                ("coreset", Value::obj(coreset_fields)),
                ("cluster_margin", Value::obj(cm_fields)),
                (
                    "hac_lance_williams",
                    Value::obj([(HAC_N.to_string(), Value::f64(hac_ns, 0))]),
                ),
                (
                    "hac_seed_baseline",
                    Value::obj([(HAC_N.to_string(), Value::opt_f64(naive_ns, 0))]),
                ),
            ]),
        )
        .field("hac_target_clusters", Value::usize(HAC_TARGET))
        .field("hac_speedup_vs_seed", Value::opt_f64(speedup, 1))
        .write("BENCH_acquisition.json");
}
