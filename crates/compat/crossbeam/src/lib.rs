//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel::unbounded` MPSC surface used by `ve-sched` is provided,
//! backed by `std::sync::mpsc`.

pub mod channel {
    //! Unbounded channels with `crossbeam::channel`-shaped signatures.

    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending side has disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Sends a message; fails only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `None` when the channel is currently empty
        /// or disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }

        /// Drains all currently queued messages.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.try_iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_receive() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            let tx2 = tx.clone();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert!(rx.try_recv().is_none());
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
