//! `vocalexplore` — the VOCALExplore system: pay-as-you-go video data
//! exploration and model building.
//!
//! This crate assembles the substrates (`ve-vidsim`, `ve-features`,
//! `ve-storage`, `ve-ml`, `ve-stats`, `ve-al`, `ve-bandit`, `ve-sched`) into
//! the system described in the paper:
//!
//! * the user-facing API of Table 1 — [`VocalExplore::add_video`],
//!   [`VocalExplore::watch`], [`VocalExplore::explore`],
//!   [`VocalExplore::add_label`] — exposed by [`system::VocalExplore`];
//! * the **Feature Manager** ([`feature_manager::FeatureManager`]) that
//!   extracts (simulated) pretrained embeddings on demand and caches them in
//!   the storage manager;
//! * the **Model Manager** ([`model_manager::ModelManager`]) that trains one
//!   linear model per candidate feature and serves predictions from the most
//!   recently trained model;
//! * the **Active Learning Manager** ([`alm::ActiveLearningManager`]) that
//!   selects which segments the user labels next (`VE-sample`) and which
//!   feature extractor to converge on (rising bandit); and
//! * the **experiment harness** ([`harness`]) that drives labeling sessions
//!   with an oracle user, accounts user-visible latency per scheduling
//!   strategy, and measures macro F1 on a held-out evaluation set — the
//!   machinery behind every figure and table reproduction in `ve-bench`.
//!
//! # Quickstart
//!
//! ```
//! use vocalexplore::prelude::*;
//!
//! // Point VOCALExplore at a (synthetic) video corpus and explore.
//! let dataset = Dataset::scaled(DatasetName::Deer, 0.05, 7);
//! let mut system = VocalExplore::new(VocalExploreConfig::for_dataset(&dataset, 7));
//! for clip in dataset.train.videos() {
//!     system.add_video(clip.clone());
//! }
//! let batch = system.explore(5, 1.0, None);
//! assert_eq!(batch.segments.len(), 5);
//! // The user labels what they saw...
//! for seg in &batch.segments {
//!     system.add_label(seg.vid, seg.range, vec![0]);
//! }
//! ```

pub mod acquisition_index;
pub mod alm;
pub mod api;
pub mod config;
pub mod degradation;
pub mod feature_manager;
pub mod harness;
pub mod model_manager;
pub mod observability;
pub mod prob_cache;
pub mod report;
pub mod session;
pub mod system;

pub use acquisition_index::{AcquisitionIndex, AcquisitionIndexStats};
pub use alm::ActiveLearningManager;
pub use api::{ExploreBatch, Prediction, SegmentRef};
pub use config::{
    CostModel, FeatureSelectionPolicy, PreprocessPolicy, SamplingPolicy, VocalExploreConfig,
    WarmStartConfig,
};
pub use degradation::Degradation;
pub use feature_manager::{ExtractionError, FeatureManager};
pub use harness::{IterationRecord, SessionConfig, SessionOutcome, SessionRunner};
pub use model_manager::{InferenceError, ModelManager, TrainError, TrainingStats};
pub use observability::{Obs, ObsHandle, SessionEvent};
pub use prob_cache::{ProbCacheStats, ProbabilityCache};
pub use report::{detect_session_anomalies, retry_storms, DiagnosticBundle, SessionReport};
pub use session::{AsyncSessionOutcome, AsyncSessionRunner, MeasuredIteration};
pub use system::VocalExplore;

/// Convenience re-exports for examples and downstream users.
pub mod prelude {
    pub use crate::api::{ExploreBatch, Prediction, SegmentRef};
    pub use crate::config::{
        CostModel, FeatureSelectionPolicy, PreprocessPolicy, SamplingPolicy, VocalExploreConfig,
        WarmStartConfig,
    };
    pub use crate::harness::{IterationRecord, SessionConfig, SessionOutcome, SessionRunner};
    pub use crate::observability::{Obs, ObsHandle, SessionEvent};
    pub use crate::report::{detect_session_anomalies, DiagnosticBundle, SessionReport};
    pub use crate::session::{AsyncSessionOutcome, AsyncSessionRunner, MeasuredIteration};
    pub use crate::system::VocalExplore;
    pub use ve_al::AcquisitionKind;
    pub use ve_bandit::RisingBanditConfig;
    pub use ve_features::ExtractorId;
    pub use ve_sched::SchedulerStrategy;
    pub use ve_vidsim::{Dataset, DatasetName, GroundTruthOracle, NoisyOracle, Oracle, TimeRange};
}
