//! The Model Manager (MM).
//!
//! "The MM trains models using the user-specified labels and performs
//! inference on these models to return predictions. [...] Our prototype MM
//! maintains one model per feature extractor. The MM trains a new model
//! whenever requested to do so by the ALM and is non-blocking: while a new
//! model is training, the MM serves requests for labels using the previously
//! trained model" (Section 2.3).

#![allow(clippy::disallowed_types)] // HashMap by design: order-exposing uses are policed by ve-lint nondeterministic-iteration

use crate::api::Prediction;
use crate::config::VocalExploreConfig;
use crate::feature_manager::FeatureManager;
use crate::observability::{ObsHandle, SessionEvent};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use ve_features::ExtractorId;
use ve_ml::{
    Classifier, CrossValConfig, OneVsRestModel, ScalerMoments, SoftmaxModel, StandardScaler,
    TrainedModel,
};
use ve_sched::fault::{FaultInjector, FaultSite};
use ve_storage::{LabelRecord, ModelRegistry};
use ve_vidsim::{TaskKind, TimeRange, VideoCorpus, VideoId};

/// Training failed after exhausting the retry budget (injected
/// training-backend fault). The previous model version, if any, remains
/// published and keeps serving predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainError {
    /// Extractor whose training request failed.
    pub extractor: ExtractorId,
    /// Session iteration the request belonged to.
    pub iteration: u32,
    /// Attempts consumed before giving up.
    pub attempts: u32,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "training {:?} failed at iteration {} after {} attempts",
            self.extractor, self.iteration, self.attempts
        )
    }
}

impl std::error::Error for TrainError {}

/// Inference failed after exhausting the retry budget (injected
/// inference-backend fault).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InferenceError {
    /// Row inference for one segment failed.
    Row {
        /// Extractor the prediction was requested from.
        extractor: ExtractorId,
        /// Segment video.
        vid: VideoId,
        /// Attempts consumed before giving up.
        attempts: u32,
    },
    /// The batch scoring backend failed for an extractor/model version.
    Batch {
        /// Extractor the batch scoring was requested from.
        extractor: ExtractorId,
        /// Registry version of the model the batch would have used.
        model_version: u64,
        /// Attempts consumed before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for InferenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferenceError::Row {
                extractor,
                vid,
                attempts,
            } => write!(
                f,
                "row inference with {extractor:?} failed for video {} after {attempts} attempts",
                vid.0
            ),
            InferenceError::Batch {
                extractor,
                model_version,
                attempts,
            } => write!(
                f,
                "batch inference with {extractor:?} (model v{model_version}) failed after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for InferenceError {}

/// A published model together with the scaler fitted on its training data.
#[derive(Debug, Clone)]
pub struct FittedModel {
    /// Feature standardizer fitted on the training features.
    pub scaler: StandardScaler,
    /// The trained classifier.
    pub model: TrainedModel,
}

/// Counters of how training requests were satisfied (exposed for tests and
/// the training benchmark).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrainingStats {
    /// Models trained from scratch (cold starts, including warm-state seeds).
    pub cold_trains: u64,
    /// Models fine-tuned from the previous iteration's weights.
    pub warm_trains: u64,
    /// Examples consumed by the most recent training call (for warm updates
    /// this is `replay + Δ`, the point of the `warm-start/v1` contract).
    pub last_examples: usize,
}

/// Per-extractor carry-over state of the warm-started trainer: the
/// accumulated usable training set, its running scaler moments, and the last
/// trained weights to fine-tune from.
struct WarmState {
    /// Feature dimensionality the state was seeded with (a mismatch — e.g. a
    /// replaced store entry with different geometry — forces a cold restart).
    dim: usize,
    /// Every usable training row consumed so far, unscaled, in label-record
    /// order.
    examples: Vec<Vec<f32>>,
    /// Single-label targets parallel to `examples` (empty for multi-label).
    single: Vec<usize>,
    /// Multi-label targets parallel to `examples` (empty for single-label).
    multi: Vec<Vec<usize>>,
    /// Running scaler moments over `examples` (O(Δ·dim) per update).
    moments: ScalerMoments,
    /// Label records already consumed from the label list.
    consumed: usize,
    /// Weights of the most recent model, the warm-start initializer.
    model: TrainedModel,
}

/// How a warm training request was resolved.
enum WarmOutcome {
    /// Fine-tuned and published.
    Published,
    /// No usable warm state — the caller must run the cold path (which
    /// re-seeds the state on success).
    ColdStart,
}

/// Model Manager: one (versioned) linear model per candidate feature
/// extractor.
pub struct ModelManager {
    config: VocalExploreConfig,
    registry: RwLock<ModelRegistry<FittedModel>>,
    warm: Mutex<HashMap<ExtractorId, WarmState>>,
    stats: Mutex<TrainingStats>,
    /// Deterministic fault injector shared with the rest of the system
    /// ([`crate::VocalExploreConfig::fault_plan`]); `None` in production runs.
    fault: Option<Arc<FaultInjector>>,
    /// Event/metrics recorder; `None` until the owning system installs one.
    obs: Option<ObsHandle>,
}

impl ModelManager {
    /// Creates an empty model manager.
    pub fn new(config: VocalExploreConfig) -> Self {
        Self {
            config,
            registry: RwLock::new(ModelRegistry::new()),
            warm: Mutex::new(HashMap::new()),
            stats: Mutex::new(TrainingStats::default()),
            fault: None,
            obs: None,
        }
    }

    /// Installs the observability recorder. Training attempts, published
    /// versions, and CV evaluations are recorded as deterministic events —
    /// both the synchronous in-place retry loop and the async executor's
    /// retryable tasks share the per-`(iteration, extractor)` fault fate, so
    /// the recorded attempt multisets are identical on either path.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = Some(obs);
    }

    fn record(&self, event: SessionEvent) {
        if let Some(obs) = &self.obs {
            obs.record(event);
        }
    }

    /// Installs (or clears) the shared fault injector. Training and inference
    /// consult it through [`VocalExploreConfig::retry`]-bounded gates.
    pub fn set_fault_injector(&mut self, fault: Option<Arc<FaultInjector>>) {
        self.fault = fault;
    }

    /// Decision key for a training request: one fate per
    /// `(iteration, extractor)` pair, so sync-path internal retries and
    /// async-path executor retries replay the identical schedule.
    fn train_key(extractor: ExtractorId, iteration: u32) -> u64 {
        (u64::from(iteration) << 3) | extractor.index() as u64
    }

    /// Consults the injector for attempts `0..retry.max_attempts` at one
    /// site/key. `Ok` as soon as an attempt is allowed through;
    /// `Err(attempts)` when the whole budget was burned. Purely logical —
    /// no sleeping, so the sync path stays wall-clock-free.
    fn fault_gate(&self, site: FaultSite, key: u64) -> Result<(), u32> {
        let Some(inj) = &self.fault else {
            return Ok(());
        };
        let max = self.config.retry.max_attempts.max(1);
        for attempt in 0..max {
            if !inj.should_fail(site, key, attempt) {
                return Ok(());
            }
        }
        Err(max)
    }

    /// Counters of how training requests were satisfied so far.
    pub fn training_stats(&self) -> TrainingStats {
        *self.stats.lock()
    }

    /// Whether a trained model exists for the extractor.
    pub fn has_model(&self, extractor: ExtractorId) -> bool {
        self.registry.read().has_model(extractor)
    }

    /// Number of models published so far (all extractors, all versions).
    pub fn models_trained(&self) -> usize {
        self.registry.read().total_published()
    }

    /// Assembles the training set for an extractor from the label records.
    /// Returns `(features, single_label_targets, multi_label_targets)`; the
    /// unused target vector is empty depending on the task kind.
    fn training_set(
        &self,
        extractor: ExtractorId,
        corpus: &VideoCorpus,
        fm: &FeatureManager,
        labels: &[LabelRecord],
    ) -> (Vec<Vec<f32>>, Vec<usize>, Vec<Vec<usize>>) {
        let mut features = Vec::with_capacity(labels.len());
        let mut single = Vec::new();
        let mut multi = Vec::new();
        for record in labels {
            let Some(fv) = fm.feature_for(extractor, corpus, record.vid, &record.range) else {
                continue;
            };
            match self.config.task {
                TaskKind::SingleLabel => {
                    let Some(&class) = record.classes.first() else {
                        continue;
                    };
                    features.push(fv.data);
                    single.push(class);
                }
                TaskKind::MultiLabel => {
                    features.push(fv.data);
                    multi.push(record.classes.clone());
                }
            }
        }
        (features, single, multi)
    }

    /// Trains and publishes a new model for the extractor using all labels
    /// collected so far. Returns `false` when there are not yet enough labels
    /// (fewer than two distinct classes for single-label tasks, or fewer than
    /// two records overall).
    ///
    /// With [`crate::WarmStartConfig::enabled`] the call fine-tunes the
    /// previous weights on the Δ new labels plus a bounded deterministic
    /// replay sample (`warm-start/v1` tolerance contract); otherwise — and
    /// for the first trainable call, or after a feature-geometry change —
    /// it trains from scratch.
    ///
    /// Errors when the fault injector fails the `(iteration, extractor)`
    /// training request at every attempt of the retry budget. On error
    /// nothing is published: the registry keeps serving the previous version.
    pub fn train(
        &self,
        extractor: ExtractorId,
        corpus: &VideoCorpus,
        fm: &FeatureManager,
        labels: &[LabelRecord],
        iteration: u32,
        cv_f1: Option<f64>,
    ) -> Result<bool, TrainError> {
        // Inlined fault gate so every consulted attempt lands in the event
        // plane — one `TrainAttempt` per attempt, exactly what the async
        // path's per-attempt `train_attempt` calls record.
        let key = Self::train_key(extractor, iteration);
        let max = self.config.retry.max_attempts.max(1);
        let mut allowed = false;
        for attempt in 0..max {
            let failed = self
                .fault
                .as_ref()
                .is_some_and(|inj| inj.should_fail(FaultSite::Training, key, attempt));
            self.record(SessionEvent::TrainAttempt {
                extractor,
                iteration,
                attempt,
                ok: !failed,
            });
            if !failed {
                allowed = true;
                break;
            }
        }
        if !allowed {
            return Err(TrainError {
                extractor,
                iteration,
                attempts: max,
            });
        }
        Ok(self.train_inner(extractor, corpus, fm, labels, iteration, cv_f1))
    }

    /// Single-attempt variant of [`ModelManager::train`] for executor-level
    /// retry: consults the injector exactly once at `attempt` (same decision
    /// key as `train`, so the async retry loop replays the sync schedule) and
    /// trains only when that attempt is allowed through.
    #[allow(clippy::too_many_arguments)] // mirrors `train` plus the attempt index
    pub fn train_attempt(
        &self,
        extractor: ExtractorId,
        corpus: &VideoCorpus,
        fm: &FeatureManager,
        labels: &[LabelRecord],
        iteration: u32,
        cv_f1: Option<f64>,
        attempt: u32,
    ) -> Result<bool, TrainError> {
        let failed = self.fault.as_ref().is_some_and(|inj| {
            inj.should_fail(
                FaultSite::Training,
                Self::train_key(extractor, iteration),
                attempt,
            )
        });
        self.record(SessionEvent::TrainAttempt {
            extractor,
            iteration,
            attempt,
            ok: !failed,
        });
        if failed {
            return Err(TrainError {
                extractor,
                iteration,
                attempts: attempt + 1,
            });
        }
        Ok(self.train_inner(extractor, corpus, fm, labels, iteration, cv_f1))
    }

    /// The fault-free training path shared by [`ModelManager::train`] and
    /// [`ModelManager::train_attempt`].
    fn train_inner(
        &self,
        extractor: ExtractorId,
        corpus: &VideoCorpus,
        fm: &FeatureManager,
        labels: &[LabelRecord],
        iteration: u32,
        cv_f1: Option<f64>,
    ) -> bool {
        if self.config.warm_start.enabled {
            if let WarmOutcome::Published =
                self.warm_update(extractor, corpus, fm, labels, iteration, cv_f1)
            {
                return true;
            }
        }
        let (features, single, multi) = self.training_set(extractor, corpus, fm, labels);
        if features.len() < 2 {
            return false;
        }
        let (scaled, scaler) = StandardScaler::fit_transform(&features);
        let model = match self.config.task {
            TaskKind::SingleLabel => {
                let distinct: std::collections::HashSet<usize> = single.iter().copied().collect();
                if distinct.len() < 2 {
                    return false;
                }
                TrainedModel::Softmax(SoftmaxModel::fit(
                    &scaled,
                    &single,
                    self.config.num_classes,
                    &self.config.train,
                ))
            }
            TaskKind::MultiLabel => TrainedModel::OneVsRest(OneVsRestModel::fit(
                &scaled,
                &multi,
                self.config.num_classes,
                &self.config.train,
            )),
        };
        {
            let mut stats = self.stats.lock();
            stats.cold_trains += 1;
            stats.last_examples = features.len();
        }
        if self.config.warm_start.enabled {
            let dim = features[0].len();
            let mut moments = ScalerMoments::new(dim);
            moments.update(&features);
            self.warm.lock().insert(
                extractor,
                WarmState {
                    dim,
                    examples: features.clone(),
                    single,
                    multi,
                    moments,
                    consumed: labels.len(),
                    model: model.clone(),
                },
            );
        }
        let version = self.registry.write().publish(
            extractor,
            features.len(),
            iteration,
            cv_f1,
            Arc::new(FittedModel { scaler, model }),
        );
        self.record(SessionEvent::TrainCompleted {
            extractor,
            iteration,
            version,
        });
        true
    }

    /// Attempts a warm (fine-tuning) update for the extractor. Only runs when
    /// a previous warm state exists and is compatible with the new Δ labels;
    /// every incompatibility (rewound label list, changed feature geometry,
    /// task mismatch) discards the state and reports
    /// [`WarmOutcome::ColdStart`] so the caller re-seeds from scratch.
    fn warm_update(
        &self,
        extractor: ExtractorId,
        corpus: &VideoCorpus,
        fm: &FeatureManager,
        labels: &[LabelRecord],
        iteration: u32,
        cv_f1: Option<f64>,
    ) -> WarmOutcome {
        let mut states = self.warm.lock();
        let Some(state) = states.get_mut(&extractor) else {
            return WarmOutcome::ColdStart;
        };
        if labels.len() < state.consumed {
            states.remove(&extractor);
            return WarmOutcome::ColdStart;
        }
        // Collect the Δ usable examples with the exact filtering rules of
        // `training_set` so cold and warm consume the same record stream.
        let (d_features, d_single, d_multi) =
            self.training_set(extractor, corpus, fm, &labels[state.consumed..]);
        if d_features.iter().any(|f| f.len() != state.dim) {
            states.remove(&extractor);
            return WarmOutcome::ColdStart;
        }
        let old_len = state.examples.len();
        state.moments.update(&d_features);
        state.examples.extend(d_features);
        state.single.extend(d_single);
        state.multi.extend(d_multi);
        state.consumed = labels.len();
        // Fine-tune set: a deterministic evenly-strided replay sample over
        // the older examples (bounded by `replay_cap`) plus every Δ example,
        // ascending — per-train cost is O(replay_cap + Δ) regardless of how
        // many labels the session has accumulated.
        let cap = self.config.warm_start.replay_cap.max(1);
        let mut idx: Vec<usize> = if old_len <= cap {
            (0..old_len).collect()
        } else {
            (0..cap).map(|i| i * old_len / cap).collect()
        };
        idx.extend(old_len..state.examples.len());
        let scaler = state.moments.scaler();
        let tune: Vec<Vec<f32>> = idx
            .iter()
            .map(|&i| scaler.transform(&state.examples[i]))
            .collect();
        let model = match (&state.model, self.config.task) {
            (TrainedModel::Softmax(init), TaskKind::SingleLabel) => {
                let targets: Vec<usize> = idx.iter().map(|&i| state.single[i]).collect();
                TrainedModel::Softmax(SoftmaxModel::fit_warm(
                    &tune,
                    &targets,
                    self.config.num_classes,
                    &self.config.train,
                    init,
                ))
            }
            (TrainedModel::OneVsRest(init), TaskKind::MultiLabel) => {
                let targets: Vec<Vec<usize>> =
                    idx.iter().map(|&i| state.multi[i].clone()).collect();
                TrainedModel::OneVsRest(OneVsRestModel::fit_warm(
                    &tune,
                    &targets,
                    self.config.num_classes,
                    &self.config.train,
                    init,
                ))
            }
            _ => {
                states.remove(&extractor);
                return WarmOutcome::ColdStart;
            }
        };
        state.model = model.clone();
        let trained_on = state.examples.len();
        drop(states);
        {
            let mut stats = self.stats.lock();
            stats.warm_trains += 1;
            stats.last_examples = idx.len();
        }
        let version = self.registry.write().publish(
            extractor,
            trained_on,
            iteration,
            cv_f1,
            Arc::new(FittedModel { scaler, model }),
        );
        self.record(SessionEvent::TrainCompleted {
            extractor,
            iteration,
            version,
        });
        WarmOutcome::Published
    }

    /// Decision key for a row-inference request: one fate per
    /// `(vid, range.start, extractor)` triple.
    fn row_key(extractor: ExtractorId, vid: VideoId, range: &TimeRange) -> u64 {
        (vid.0 << 3 | extractor.index() as u64) ^ range.start.to_bits().rotate_left(17)
    }

    /// Predictions for a video segment from the latest model of the given
    /// extractor, sorted by decreasing probability. Empty when no model has
    /// been trained yet or the video is unknown.
    ///
    /// Errors when the fault injector fails this segment's inference at every
    /// attempt of the retry budget.
    pub fn predict(
        &self,
        extractor: ExtractorId,
        corpus: &VideoCorpus,
        fm: &FeatureManager,
        vid: VideoId,
        range: &TimeRange,
    ) -> Result<Vec<Prediction>, InferenceError> {
        let Some((_, fitted)) = self.registry.read().latest(extractor) else {
            return Ok(Vec::new());
        };
        self.fault_gate(
            FaultSite::RowInference,
            Self::row_key(extractor, vid, range),
        )
        .map_err(|attempts| InferenceError::Row {
            extractor,
            vid,
            attempts,
        })?;
        let Some(fv) = fm.feature_for(extractor, corpus, vid, range) else {
            return Ok(Vec::new());
        };
        let scaled = fitted.scaler.transform(&fv.data);
        let probs = fitted.model.predict_proba(&scaled);
        let mut predictions: Vec<Prediction> = probs
            .iter()
            .enumerate()
            .map(|(class, &probability)| Prediction { class, probability })
            .collect();
        // `total_cmp` keeps the task path panic-free: `predict` runs inside
        // executor-submitted closures, where a NaN probability must degrade
        // to a deterministic (if useless) order, not poison the task.
        predictions.sort_by(|a, b| b.probability.total_cmp(&a.probability));
        Ok(predictions)
    }

    /// Predictions for a whole batch of segments from the latest model of the
    /// given extractor (one `T_i` per segment, fanned out across the
    /// data-parallel workers — each segment is coarse enough to be worth a
    /// task by itself). Output is position-ordered and identical at any
    /// thread count. Returns empty prediction lists when no model exists.
    ///
    /// When any segment's inference exhausts its retry budget the whole batch
    /// errors with the failure at the **lowest segment index** — fault
    /// decisions are pure per segment, so which error surfaces does not
    /// depend on worker scheduling.
    pub fn predict_batch(
        &self,
        extractor: ExtractorId,
        corpus: &VideoCorpus,
        fm: &FeatureManager,
        segments: &[(VideoId, TimeRange)],
    ) -> Result<Vec<Vec<Prediction>>, InferenceError> {
        if !self.has_model(extractor) {
            return Ok(segments.iter().map(|_| Vec::new()).collect());
        }
        ve_sched::parallel::par_map_tasks(segments.len(), |i| {
            let (vid, range) = &segments[i];
            self.predict(extractor, corpus, fm, *vid, range)
        })
        .into_iter()
        .collect()
    }

    /// Consults the injector for the batch-probability backend of this
    /// extractor, keyed on the latest published model version (so a retrain
    /// heals a previously failing batch path and vice versa). The ALM calls
    /// this **before** choosing between the probability cache and the
    /// uncached scoring path, keeping cache-on/off runs bit-identical under
    /// faults. `Ok` when no model exists — there is nothing to infer with.
    pub fn batch_inference_gate(&self, extractor: ExtractorId) -> Result<(), InferenceError> {
        let version = self
            .registry
            .read()
            .latest(extractor)
            .map(|(rec, _)| rec.version);
        let Some(model_version) = version else {
            return Ok(());
        };
        self.fault_gate(
            FaultSite::BatchInference,
            (model_version << 3) | extractor.index() as u64,
        )
        .map_err(|attempts| InferenceError::Batch {
            extractor,
            model_version,
            attempts,
        })
    }

    /// Raw class probabilities for a batch of already-extracted feature
    /// vectors (used by the acquisition functions). Returns one probability
    /// row per candidate as a contiguous block, or an empty block when no
    /// model has been trained yet. Rows are scored in parallel across the
    /// scheduler's data-parallel workers; output is identical at any thread
    /// count.
    pub fn predict_proba_batch(
        &self,
        extractor: ExtractorId,
        features: &ve_ml::FeatureBlock,
    ) -> ve_ml::FeatureBlock {
        let Some((_, fitted)) = self.registry.read().latest(extractor) else {
            return ve_ml::FeatureBlock::empty(0);
        };
        let rows = ve_sched::parallel::par_map(features.rows(), |i| {
            fitted
                .model
                .predict_proba(&fitted.scaler.transform(features.row(i)))
        });
        let mut out =
            ve_ml::FeatureBlockBuilder::with_capacity(features.rows(), fitted.model.num_classes());
        for row in &rows {
            out.push_row(row);
        }
        out.build()
    }

    /// Cross-validated macro-F1 estimate of the extractor's quality on the
    /// labels collected so far (the rising bandit's reward signal). Returns
    /// `None` while there are too few labels to build stratified folds.
    ///
    /// The estimate is expressed on the same scale as the held-out evaluation
    /// metric — macro F1 over the **full vocabulary** — by treating classes
    /// that do not yet have enough labels to participate in the stratified
    /// folds as contributing an F1 of 0. This keeps the reward *rising* as
    /// labels accumulate (more classes become learnable), which is the
    /// behaviour the rising-bandit assumptions rely on; scoring only the
    /// already-covered classes would instead start near 1 and drift downward
    /// as the problem grows harder.
    pub fn evaluate_cv(
        &self,
        extractor: ExtractorId,
        corpus: &VideoCorpus,
        fm: &FeatureManager,
        labels: &[LabelRecord],
    ) -> Option<f64> {
        let (features, single, multi) = self.training_set(extractor, corpus, fm, labels);
        if features.len() < 6 {
            return None;
        }
        let score = match self.config.task {
            TaskKind::SingleLabel => {
                let cfg = CrossValConfig {
                    train: self.config.train,
                    ..CrossValConfig::default()
                };
                let kept = {
                    let mut per_class = vec![0usize; self.config.num_classes];
                    for &c in &single {
                        per_class[c] += 1;
                    }
                    per_class
                        .iter()
                        .filter(|&&n| n >= cfg.min_instances_per_class.max(cfg.folds))
                        .count()
                };
                ve_ml::cross_validate(&features, &single, self.config.num_classes, &cfg)
                    .map(|score| score * kept as f64 / self.config.num_classes as f64)
            }
            TaskKind::MultiLabel => self.multilabel_cv(&features, &multi),
        };
        if let Some(s) = score {
            // The score is a pure function of (labels, extractor, config), so
            // its bits belong in the deterministic plane.
            self.record(SessionEvent::EvaluationCompleted {
                extractor,
                score_bits: s.to_bits(),
            });
        }
        score
    }

    /// Simple 3-fold CV for multi-label tasks (no stratification; folds are
    /// assigned round-robin which is adequate because every class appears in
    /// many records).
    fn multilabel_cv(&self, features: &[Vec<f32>], targets: &[Vec<usize>]) -> Option<f64> {
        const FOLDS: usize = 3;
        let n = features.len();
        if n < FOLDS * 2 {
            return None;
        }
        let mut scores = Vec::new();
        for fold in 0..FOLDS {
            let mut train_x = Vec::new();
            let mut train_y = Vec::new();
            let mut test_x = Vec::new();
            let mut test_y = Vec::new();
            for i in 0..n {
                if i % FOLDS == fold {
                    test_x.push(features[i].clone());
                    test_y.push(targets[i].clone());
                } else {
                    train_x.push(features[i].clone());
                    train_y.push(targets[i].clone());
                }
            }
            if train_x.is_empty() || test_x.is_empty() {
                continue;
            }
            let (scaled_train, scaler) = StandardScaler::fit_transform(&train_x);
            let model = OneVsRestModel::fit(
                &scaled_train,
                &train_y,
                self.config.num_classes,
                &self.config.train,
            );
            let preds: Vec<Vec<usize>> = test_x
                .iter()
                .map(|x| {
                    let probs = model.predict_proba(&scaler.transform(x));
                    probs
                        .iter()
                        .enumerate()
                        .filter(|(_, &p)| p >= 0.5)
                        .map(|(c, _)| c)
                        .collect()
                })
                .collect();
            scores.push(ve_ml::macro_f1_multilabel(
                &test_y,
                &preds,
                self.config.num_classes,
            ));
        }
        if scores.is_empty() {
            None
        } else {
            // ve-lint: allow(float-reduction-order) -- fold scores accumulate in fixed fold order (Vec iteration)
            Some(scores.iter().sum::<f64>() / scores.len() as f64)
        }
    }

    /// The latest fitted model for an extractor, if any (used by the harness
    /// to evaluate on the held-out set).
    pub fn latest(&self, extractor: ExtractorId) -> Option<Arc<FittedModel>> {
        self.registry.read().latest(extractor).map(|(_, m)| m)
    }

    /// The latest fitted model together with its registry version (the
    /// probability cache keys on the version).
    pub fn latest_versioned(&self, extractor: ExtractorId) -> Option<(u64, Arc<FittedModel>)> {
        self.registry
            .read()
            .latest(extractor)
            .map(|(rec, m)| (rec.version, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ve_features::FeatureSimulator;
    use ve_storage::StorageManager;
    use ve_vidsim::{Dataset, DatasetName, GroundTruthOracle, Oracle};

    fn setup(n_videos: usize) -> (Dataset, FeatureManager, ModelManager, Vec<LabelRecord>) {
        let ds = Dataset::scaled(DatasetName::Deer, 0.15, 21);
        let sim = FeatureSimulator::new(DatasetName::Deer, 9, 21);
        let fm = FeatureManager::new(sim, StorageManager::new());
        let cfg = VocalExploreConfig::for_dataset(&ds, 21);
        let mm = ModelManager::new(cfg);
        let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);
        let mut labels = Vec::new();
        for clip in ds.train.videos().iter().take(n_videos) {
            let range = TimeRange::new(0.0, 1.0);
            let classes = oracle.label(&ds.train, clip.id, &range);
            labels.push(LabelRecord {
                vid: clip.id,
                range,
                classes,
                iteration: 0,
            });
        }
        (ds, fm, mm, labels)
    }

    #[test]
    fn refuses_to_train_with_too_few_labels() {
        let (ds, fm, mm, labels) = setup(1);
        assert!(!mm
            .train(ExtractorId::R3d, &ds.train, &fm, &labels, 0, None)
            .unwrap());
        assert!(!mm.has_model(ExtractorId::R3d));
    }

    #[test]
    fn trains_and_predicts() {
        let (ds, fm, mm, labels) = setup(60);
        assert!(mm
            .train(ExtractorId::R3d, &ds.train, &fm, &labels, 1, None)
            .unwrap());
        assert!(mm.has_model(ExtractorId::R3d));
        assert_eq!(mm.models_trained(), 1);
        let clip = &ds.train.videos()[70];
        let preds = mm
            .predict(
                ExtractorId::R3d,
                &ds.train,
                &fm,
                clip.id,
                &TimeRange::new(0.0, 1.0),
            )
            .unwrap();
        assert_eq!(preds.len(), 9, "one probability per vocabulary class");
        // Sorted by decreasing probability and sums to ~1.
        assert!(preds
            .windows(2)
            .all(|w| w[0].probability >= w[1].probability));
        let total: f32 = preds.iter().map(|p| p.probability).sum();
        assert!((total - 1.0).abs() < 1e-3);
    }

    #[test]
    fn predictions_empty_without_model() {
        let (ds, fm, mm, _) = setup(10);
        let clip = &ds.train.videos()[0];
        assert!(mm
            .predict(
                ExtractorId::Mvit,
                &ds.train,
                &fm,
                clip.id,
                &TimeRange::new(0.0, 1.0)
            )
            .unwrap()
            .is_empty());
        assert!(mm
            .predict_proba_batch(
                ExtractorId::Mvit,
                &ve_ml::FeatureBlock::from_nested(&[vec![0.0; 64]])
            )
            .is_empty());
    }

    #[test]
    fn predict_batch_matches_single_segment_predictions() {
        let (ds, fm, mm, labels) = setup(60);
        assert!(mm
            .train(ExtractorId::R3d, &ds.train, &fm, &labels, 1, None)
            .unwrap());
        let segments: Vec<(VideoId, TimeRange)> = ds
            .train
            .videos()
            .iter()
            .skip(60)
            .take(6)
            .map(|c| (c.id, TimeRange::new(0.0, 1.0)))
            .collect();
        let batch = mm
            .predict_batch(ExtractorId::R3d, &ds.train, &fm, &segments)
            .unwrap();
        assert_eq!(batch.len(), segments.len());
        for (preds, (vid, range)) in batch.iter().zip(&segments) {
            assert_eq!(
                preds,
                &mm.predict(ExtractorId::R3d, &ds.train, &fm, *vid, range)
                    .unwrap()
            );
        }
        // Without a model every segment gets an empty prediction list.
        let empty = mm
            .predict_batch(ExtractorId::Clip, &ds.train, &fm, &segments)
            .unwrap();
        assert!(empty.iter().all(|p| p.is_empty()));
    }

    #[test]
    fn cv_estimate_orders_extractors_by_signal() {
        let (ds, fm, mm, labels) = setup(90);
        let good = mm
            .evaluate_cv(ExtractorId::R3d, &ds.train, &fm, &labels)
            .unwrap();
        let bad = mm
            .evaluate_cv(ExtractorId::Random, &ds.train, &fm, &labels)
            .unwrap();
        assert!(good > bad, "R3D ({good:.3}) must beat Random ({bad:.3})");
    }

    #[test]
    fn cv_returns_none_with_too_few_labels() {
        let (ds, fm, mm, labels) = setup(3);
        assert!(mm
            .evaluate_cv(ExtractorId::R3d, &ds.train, &fm, &labels)
            .is_none());
    }

    #[test]
    fn multilabel_training_and_prediction() {
        let ds = Dataset::scaled(DatasetName::Bdd, 0.3, 9);
        let sim = FeatureSimulator::new(DatasetName::Bdd, 6, 9);
        let fm = FeatureManager::new(sim, StorageManager::new());
        let cfg = VocalExploreConfig::for_dataset(&ds, 9);
        let mm = ModelManager::new(cfg);
        let oracle = GroundTruthOracle::new(TaskKind::MultiLabel);
        let labels: Vec<LabelRecord> = ds
            .train
            .videos()
            .iter()
            .take(80)
            .map(|clip| {
                let range = TimeRange::new(0.0, 1.5);
                LabelRecord {
                    vid: clip.id,
                    range,
                    classes: oracle.label(&ds.train, clip.id, &range),
                    iteration: 0,
                }
            })
            .collect();
        assert!(mm
            .train(ExtractorId::Clip, &ds.train, &fm, &labels, 0, None)
            .unwrap());
        let clip = &ds.train.videos()[90];
        let preds = mm
            .predict(
                ExtractorId::Clip,
                &ds.train,
                &fm,
                clip.id,
                &TimeRange::new(0.0, 1.5),
            )
            .unwrap();
        assert_eq!(preds.len(), 6);
        // Multi-label probabilities need not sum to one.
        assert!(preds.iter().all(|p| (0.0..=1.0).contains(&p.probability)));
        assert!(mm
            .evaluate_cv(ExtractorId::Clip, &ds.train, &fm, &labels)
            .is_some());
    }

    #[test]
    fn retraining_publishes_new_version() {
        let (ds, fm, mm, labels) = setup(60);
        assert!(mm
            .train(ExtractorId::R3d, &ds.train, &fm, &labels, 0, Some(0.4))
            .unwrap());
        assert!(mm
            .train(ExtractorId::R3d, &ds.train, &fm, &labels, 1, Some(0.5))
            .unwrap());
        assert_eq!(mm.models_trained(), 2);
        assert!(mm.latest(ExtractorId::R3d).is_some());
    }

    /// Same corpus/labels as `setup`, but with a warm-start-enabled manager.
    fn warm_setup(n_labels: usize) -> (Dataset, FeatureManager, ModelManager, Vec<LabelRecord>) {
        let (ds, fm, _, labels) = setup(n_labels);
        let cfg =
            VocalExploreConfig::for_dataset(&ds, 21).with_warm_start(crate::WarmStartConfig {
                enabled: true,
                replay_cap: 64,
            });
        (ds, fm, ModelManager::new(cfg), labels)
    }

    #[test]
    fn warm_training_fine_tunes_with_bounded_examples() {
        let (ds, fm, mm, labels) = warm_setup(90);
        assert!(mm
            .train(ExtractorId::R3d, &ds.train, &fm, &labels[..70], 0, None)
            .unwrap());
        let after_cold = mm.training_stats();
        assert_eq!((after_cold.cold_trains, after_cold.warm_trains), (1, 0));
        assert!(mm
            .train(ExtractorId::R3d, &ds.train, &fm, &labels, 1, None)
            .unwrap());
        let stats = mm.training_stats();
        assert_eq!((stats.cold_trains, stats.warm_trains), (1, 1));
        // Warm update consumed replay (≤ 64) + Δ (20 records), not all 90.
        assert!(
            stats.last_examples <= 64 + 20,
            "warm update must be O(replay_cap + Δ), consumed {}",
            stats.last_examples
        );
        assert_eq!(mm.models_trained(), 2);
        // Version advanced: the probability cache keys on this.
        assert_eq!(
            mm.latest_versioned(ExtractorId::R3d).map(|(v, _)| v),
            Some(1)
        );
    }

    #[test]
    fn warm_training_is_deterministic() {
        // warm-start/v1: the weights are a deterministic function of the
        // training-call history.
        let probes: Vec<Vec<Prediction>> = (0..2)
            .map(|_| {
                let (ds, fm, mm, labels) = warm_setup(90);
                assert!(mm
                    .train(ExtractorId::R3d, &ds.train, &fm, &labels[..60], 0, None)
                    .unwrap());
                assert!(mm
                    .train(ExtractorId::R3d, &ds.train, &fm, &labels[..75], 1, None)
                    .unwrap());
                assert!(mm
                    .train(ExtractorId::R3d, &ds.train, &fm, &labels, 2, None)
                    .unwrap());
                let clip = &ds.train.videos()[95];
                mm.predict(
                    ExtractorId::R3d,
                    &ds.train,
                    &fm,
                    clip.id,
                    &TimeRange::new(0.0, 1.0),
                )
                .unwrap()
            })
            .collect();
        assert_eq!(probes[0], probes[1]);
    }

    #[test]
    fn warm_quality_stays_within_tolerance_of_cold() {
        // warm-start/v1 pins quality, not bits: after the same label stream,
        // the fine-tuned model's held-out accuracy must stay within 0.15 of
        // the from-scratch model's.
        let (ds, fm, cold_mm, labels) = setup(90);
        assert!(cold_mm
            .train(ExtractorId::R3d, &ds.train, &fm, &labels, 0, None)
            .unwrap());
        let (_, _, warm_mm, _) = warm_setup(90);
        assert!(warm_mm
            .train(ExtractorId::R3d, &ds.train, &fm, &labels[..50], 0, None)
            .unwrap());
        for (i, upto) in [60, 70, 80, 90].into_iter().enumerate() {
            assert!(warm_mm
                .train(
                    ExtractorId::R3d,
                    &ds.train,
                    &fm,
                    &labels[..upto],
                    i as u32 + 1,
                    None
                )
                .unwrap());
        }
        let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);
        let accuracy = |mm: &ModelManager| {
            let clips: Vec<_> = ds.train.videos().iter().skip(90).take(40).collect();
            let correct = clips
                .iter()
                .filter(|clip| {
                    let range = TimeRange::new(0.0, 1.0);
                    let truth = oracle.label(&ds.train, clip.id, &range);
                    let preds = mm
                        .predict(ExtractorId::R3d, &ds.train, &fm, clip.id, &range)
                        .unwrap();
                    preds.first().map(|p| p.class) == truth.first().copied()
                })
                .count();
            correct as f64 / clips.len() as f64
        };
        let cold = accuracy(&cold_mm);
        let warm = accuracy(&warm_mm);
        assert!(
            warm >= cold - 0.15,
            "warm accuracy {warm:.3} fell more than 0.15 below cold {cold:.3}"
        );
    }

    #[test]
    fn warm_state_survives_empty_delta_and_rewinds_to_cold() {
        let (ds, fm, mm, labels) = warm_setup(70);
        assert!(mm
            .train(ExtractorId::R3d, &ds.train, &fm, &labels, 0, None)
            .unwrap());
        // No new labels: replay-only fine-tune still publishes a version.
        assert!(mm
            .train(ExtractorId::R3d, &ds.train, &fm, &labels, 1, None)
            .unwrap());
        assert_eq!(mm.training_stats().warm_trains, 1);
        // A rewound (shorter) label list discards the state and cold-starts.
        assert!(mm
            .train(ExtractorId::R3d, &ds.train, &fm, &labels[..40], 2, None)
            .unwrap());
        let stats = mm.training_stats();
        assert_eq!((stats.cold_trains, stats.warm_trains), (2, 1));
        assert_eq!(mm.models_trained(), 3);
    }
}
