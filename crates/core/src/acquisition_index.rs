//! The persistent candidate index behind active-learning selection.
//!
//! Before this subsystem existed, every active `Explore` call re-assembled
//! its candidate set from zero: scan every pooled video, row-copy every
//! unlabeled window's embedding into a fresh block, rebuild the labeled
//! anchor block from every label record, and — when the pool outgrew 2,000
//! windows — shuffle-truncate it at random. Under `VE-full`, where eager
//! extraction grows the feature-bearing pool to tens of thousands of windows,
//! that per-call work dominated the *measured* sample-selection latency
//! (`T_s`) even though each iteration differs from the previous one by only a
//! handful of new videos and labels.
//!
//! [`AcquisitionIndex`] makes selection incremental across iterations:
//!
//! * **Candidate state** — one long-lived [`FeatureBlock`] plus parallel
//!   window metadata, in *canonical order* (videos ascending by id, windows
//!   in time order). New extractions are discovered through the
//!   [`ve_storage::FeatureStore`] change log (generation counter) and
//!   ingested as O(Δ) appends (or a single merge splice when a video id
//!   lands mid-index); freshly labeled windows are masked in place instead
//!   of being filtered out by a full re-scan.
//! * **Coreset coverage state** — the minimum squared distance from every
//!   candidate to the labeled anchor set is maintained across calls and
//!   updated only for the Δ new anchors via
//!   [`FeatureBlock::min_sq_distances_update`], turning the per-call O(n·L)
//!   anchor sweep into O(n·Δ).
//! * **Cluster-sketch reduction** — when the unmasked pool exceeds the
//!   configured cap, a [`ve_al::ClusterSketch`] (k-means centroids fitted
//!   over a fixed index prefix, per-row assignments maintained
//!   incrementally) picks a structure-aware candidate subset, replacing the
//!   old blind shuffle-truncate.
//!
//! # Determinism and invalidation contract
//!
//! Every piece of index state is a pure function of *(store contents for the
//! index's extractor, corpus membership, the label list, clip length)* — not
//! of the call history that produced it. Incrementally grown state is
//! bit-identical to a from-scratch rebuild at the same inputs, at any
//! `compute_threads` setting; the property tests in
//! `tests/acquisition_index_equivalence.rs` drive randomized
//! extract/label/explore interleavings to pin this. The invalidation rules
//! that keep the contract cheap to uphold:
//!
//! * a changed extractor or clip length, a replaced store entry, or a
//!   dropped extractor ⇒ full rebuild from the store snapshot;
//! * store entries whose video is not (yet) in the corpus stay pending and
//!   are retried every sync;
//! * the sketch survives only tail appends past its saturated fit prefix —
//!   anything else discards it, and the next over-cap call refits from the
//!   current rows (same result a fresh index would produce);
//! * anchors ingest lazily (only coreset calls pay for them), but always
//!   catch up to the full label list before selection.

#![allow(clippy::disallowed_types)] // HashMap by design: order-exposing uses are policed by ve-lint nondeterministic-iteration

use crate::feature_manager::FeatureManager;
use std::collections::HashMap;
use ve_al::{ClusterSketch, ClusterSketchConfig};
use ve_features::ExtractorId;
use ve_ml::{FeatureBlock, FeatureBlockBuilder};
use ve_storage::{FeatureStoreChange, LabelStore};
use ve_vidsim::{TimeRange, VideoCorpus, VideoId};

/// Diagnostic counters of the index (exposed through the ALM for tests and
/// benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcquisitionIndexStats {
    /// Candidate windows held (masked ones included).
    pub rows: usize,
    /// Windows still selectable (not labeled).
    pub unmasked_rows: usize,
    /// Videos ingested.
    pub videos: usize,
    /// Labeled anchor rows ingested for coreset coverage.
    pub anchors: usize,
    /// Whether a cluster sketch is currently alive.
    pub sketch_built: bool,
}

/// One video's windows collected from the feature store, staged for ingest.
struct StagedVideo {
    vid: VideoId,
    ranges: Vec<TimeRange>,
    masked: Vec<bool>,
    block: FeatureBlock,
    coverage: Vec<f32>,
}

/// Persistent candidate-window index owned by the Active Learning Manager
/// (see module docs).
pub struct AcquisitionIndex {
    extractor: ExtractorId,
    clip_len: f64,
    candidate_cap: usize,
    sketch_config: ClusterSketchConfig,
    /// Store generation the index has caught up to.
    store_gen: u64,
    /// Label records already applied to the mask.
    labels_masked: usize,
    /// Label records already ingested as coverage anchors.
    anchors_ingested: usize,
    needs_rebuild: bool,
    /// Window metadata, parallel to the block's rows.
    meta: Vec<(VideoId, TimeRange)>,
    /// Candidate embeddings, one row per window, canonical order.
    block: FeatureBlock,
    /// `true` = labeled (not selectable).
    masked: Vec<bool>,
    unmasked: usize,
    /// Row span of each ingested video: `vid -> (start, len)`.
    video_rows: HashMap<VideoId, (usize, usize)>,
    /// Ingested videos in canonical (ascending) order.
    video_order: Vec<VideoId>,
    /// Store entries whose video was not in the corpus at ingest time.
    pending_corpus: Vec<VideoId>,
    /// Labeled anchor rows (label-record order).
    anchors: FeatureBlock,
    /// Min squared distance from each row to the anchor set (∞ before any
    /// anchor exists).
    coverage: Vec<f32>,
    sketch: Option<ClusterSketch>,
    /// Row-identity epoch for positional caches layered on top of the index
    /// (the ALM's `ProbabilityCache` keys on it). Bumped whenever existing
    /// rows may have moved or changed — [`Self::rebuild`] and the
    /// [`Self::merge`] splice — but *not* on tail appends, whose cached
    /// prefix rows stay positionally valid.
    epoch: u64,
}

impl AcquisitionIndex {
    /// An empty index for one `(extractor, clip_len)` pair; the first
    /// [`AcquisitionIndex::sync`] populates it from the store snapshot.
    pub fn new(extractor: ExtractorId, clip_len: f64, candidate_cap: usize) -> Self {
        Self {
            extractor,
            clip_len,
            candidate_cap: candidate_cap.max(1),
            sketch_config: ClusterSketchConfig::default(),
            store_gen: 0,
            labels_masked: 0,
            anchors_ingested: 0,
            needs_rebuild: true,
            meta: Vec::new(),
            block: FeatureBlock::empty(0),
            masked: Vec::new(),
            unmasked: 0,
            video_rows: HashMap::new(),
            video_order: Vec::new(),
            pending_corpus: Vec::new(),
            anchors: FeatureBlock::empty(0),
            coverage: Vec::new(),
            sketch: None,
            epoch: 0,
        }
    }

    /// Current row-identity epoch (see the `epoch` field docs).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the index serves this `(extractor, clip_len)` pair.
    pub fn matches(&self, extractor: ExtractorId, clip_len: f64) -> bool {
        self.extractor == extractor && self.clip_len == clip_len
    }

    /// Candidate windows held (masked included).
    pub fn rows(&self) -> usize {
        self.meta.len()
    }

    /// Selectable (unlabeled) windows.
    pub fn unmasked_rows(&self) -> usize {
        self.unmasked
    }

    /// Ingested videos.
    pub fn video_count(&self) -> usize {
        self.video_order.len()
    }

    /// O(1) membership test — the candidate-assembly fix for the old
    /// O(n²) `pool.contains(vid)` scans.
    pub fn contains_video(&self, vid: VideoId) -> bool {
        self.video_rows.contains_key(&vid)
    }

    /// The candidate block (canonical row order).
    pub fn block(&self) -> &FeatureBlock {
        &self.block
    }

    /// Window metadata of row `row`.
    pub fn meta_at(&self, row: usize) -> (VideoId, TimeRange) {
        self.meta[row]
    }

    /// Diagnostic counters.
    pub fn stats(&self) -> AcquisitionIndexStats {
        AcquisitionIndexStats {
            rows: self.rows(),
            unmasked_rows: self.unmasked,
            videos: self.video_count(),
            anchors: self.anchors.rows(),
            sketch_built: self.sketch.is_some(),
        }
    }

    /// Catches the index up to the store's change log and the label list:
    /// ingests newly extracted videos (O(Δ) appends in the common case),
    /// retries corpus-pending entries, rebuilds on invalidation events, and
    /// masks freshly labeled windows.
    pub fn sync(
        &mut self,
        fm: &FeatureManager,
        corpus: &VideoCorpus,
        labels: &LabelStore,
    ) -> &mut Self {
        let mut fresh: Vec<VideoId> = Vec::new();
        if !self.needs_rebuild {
            let (gen, changes) = fm.store_changes_since(self.store_gen);
            for change in changes {
                match change {
                    FeatureStoreChange::Upsert {
                        extractor,
                        vid,
                        replaced,
                    } if extractor == self.extractor => {
                        if self.video_rows.contains_key(&vid) {
                            if replaced {
                                // Rows we already ingested were overwritten:
                                // everything derived from them is stale.
                                self.needs_rebuild = true;
                            }
                        } else {
                            fresh.push(vid);
                        }
                    }
                    FeatureStoreChange::DropExtractor { extractor }
                        if extractor == self.extractor =>
                    {
                        self.needs_rebuild = true;
                    }
                    _ => {}
                }
            }
            self.store_gen = gen;
        }
        if self.needs_rebuild {
            self.rebuild(fm, corpus, labels);
        } else {
            let mut queue = std::mem::take(&mut self.pending_corpus);
            queue.extend(fresh);
            self.ingest(queue, fm, corpus, labels);
        }
        self.sync_masks(labels);
        self
    }

    /// Full reconstruction from the current store snapshot. The result is
    /// identical to what incremental syncs over the same final state produce
    /// — this is the "from scratch" side of the determinism contract.
    fn rebuild(&mut self, fm: &FeatureManager, corpus: &VideoCorpus, labels: &LabelStore) {
        let (gen, vids) = fm.store_state_for(self.extractor);
        self.store_gen = gen;
        self.labels_masked = 0;
        self.anchors_ingested = 0;
        self.meta.clear();
        self.block = FeatureBlock::empty(0);
        self.masked.clear();
        self.unmasked = 0;
        self.video_rows.clear();
        self.video_order.clear();
        self.pending_corpus.clear();
        self.anchors = FeatureBlock::empty(0);
        self.coverage.clear();
        self.sketch = None;
        self.epoch += 1;
        self.needs_rebuild = false;
        self.ingest(vids, fm, corpus, labels);
    }

    /// Collects one video's windows from the store (the entry exists: ingest
    /// feeds come from the change log or the store snapshot, so this is a
    /// cache hit). Window enumeration and labeled-window handling replicate
    /// the old per-call assembly exactly, except labeled windows are kept
    /// with their mask set instead of skipped.
    fn collect_video(
        &self,
        fm: &FeatureManager,
        corpus: &VideoCorpus,
        labels: &LabelStore,
        vid: VideoId,
    ) -> Option<StagedVideo> {
        let clip = corpus.get(vid)?;
        let windows = clip.num_windows(self.clip_len);
        fm.with_video_features(self.extractor, corpus, vid, |entry| {
            let mut ranges = Vec::new();
            let mut masked = Vec::new();
            let mut rows = FeatureBlockBuilder::new();
            for w in 0..windows {
                let range =
                    TimeRange::new(w as f64 * self.clip_len, (w + 1) as f64 * self.clip_len);
                if let Some(i) = entry.window_for(&range) {
                    ranges.push(range);
                    masked.push(labels.is_labeled(vid, &range));
                    rows.push_row(entry.row(i));
                }
            }
            StagedVideo {
                vid,
                ranges,
                masked,
                block: rows.build(),
                coverage: Vec::new(),
            }
        })
    }

    /// Ingests a batch of videos: tail-append when every new id sorts after
    /// the existing ones (the common case — eager extraction walks the corpus
    /// in order), one merge splice otherwise. Videos missing from the corpus
    /// go to the pending list; already-ingested ids are skipped.
    fn ingest(
        &mut self,
        mut vids: Vec<VideoId>,
        fm: &FeatureManager,
        corpus: &VideoCorpus,
        labels: &LabelStore,
    ) {
        vids.sort_unstable();
        vids.dedup();
        let mut staged: Vec<StagedVideo> = Vec::new();
        for vid in vids {
            if self.video_rows.contains_key(&vid) {
                continue;
            }
            match self.collect_video(fm, corpus, labels, vid) {
                Some(item) => staged.push(item),
                None => self.pending_corpus.push(vid),
            }
        }
        if staged.is_empty() {
            return;
        }

        // Establish (or check) the embedding dimensionality.
        if let Some(dim) = staged
            .iter()
            .find(|i| !i.block.is_empty())
            .map(|i| i.block.dim())
        {
            if self.block.rows() == 0 {
                if self.block.dim() != dim {
                    self.block = FeatureBlock::empty(dim);
                }
            } else {
                assert_eq!(
                    dim,
                    self.block.dim(),
                    "extractor dimensionality changed mid-session"
                );
            }
        }

        // Coverage of the new rows against the anchors ingested so far: one
        // blocked pass per video, O(Δrows · anchors · dim).
        for item in &mut staged {
            item.coverage = if self.anchors.rows() == 0 {
                vec![f32::INFINITY; item.block.rows()]
            } else {
                item.block.min_sq_distances_to_block(&self.anchors)
            };
        }

        let tail_append = self
            .video_order
            .last()
            .is_none_or(|&last| last < staged[0].vid);
        if tail_append {
            self.append(staged);
        } else {
            self.merge(staged);
        }
    }

    /// O(Δ) append of videos that all sort after the current tail.
    fn append(&mut self, staged: Vec<StagedVideo>) {
        for item in staged {
            let start = self.meta.len();
            let rows = item.block.rows();
            self.block.reserve_rows(rows);
            for r in 0..rows {
                self.block.push_row(item.block.row(r));
                self.meta.push((item.vid, item.ranges[r]));
            }
            self.unmasked += item.masked.iter().filter(|&&m| !m).count();
            self.masked.extend(item.masked);
            self.coverage.extend(item.coverage);
            self.video_rows.insert(item.vid, (start, rows));
            self.video_order.push(item.vid);
        }
        // The sketch survives tail growth only when its fit prefix is
        // saturated (a fresh fit over the grown index would use the same
        // prefix rows); otherwise drop it so the next over-cap call refits.
        if self
            .sketch
            .as_ref()
            .is_some_and(|s| s.prefix_len() < self.sketch_config.prefix_rows)
        {
            self.sketch = None;
        }
    }

    /// Merge splice for out-of-order video ids: rebuilds the row arrays once
    /// by walking old and new videos in ascending id order (O(n + Δ) copies,
    /// no distance work). Derived per-row state (mask, coverage) moves with
    /// its rows, so nothing is recomputed.
    fn merge(&mut self, staged: Vec<StagedVideo>) {
        let dim = if self.block.dim() > 0 {
            self.block.dim()
        } else {
            staged
                .iter()
                .find(|i| !i.block.is_empty())
                .map_or(0, |i| i.block.dim())
        };
        let added_rows: usize = staged.iter().map(|i| i.block.rows()).sum::<usize>();
        let total_rows = self.meta.len() + added_rows;
        let mut data: Vec<f32> = Vec::with_capacity(total_rows * dim);
        let mut meta = Vec::with_capacity(total_rows);
        let mut masked = Vec::with_capacity(total_rows);
        let mut coverage = Vec::with_capacity(total_rows);
        let mut video_rows = HashMap::with_capacity(self.video_order.len() + staged.len());
        let mut video_order = Vec::with_capacity(self.video_order.len() + staged.len());

        let mut old = self.video_order.iter().copied().peekable();
        let mut new = staged.into_iter().peekable();
        loop {
            let take_old = match (old.peek(), new.peek()) {
                (Some(&o), Some(n)) => o < n.vid,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_old {
                let vid = old.next().expect("peeked");
                let (start, len) = self.video_rows[&vid];
                data.extend_from_slice(&self.block.as_slice()[start * dim..(start + len) * dim]);
                meta.extend_from_slice(&self.meta[start..start + len]);
                masked.extend_from_slice(&self.masked[start..start + len]);
                coverage.extend_from_slice(&self.coverage[start..start + len]);
                video_rows.insert(vid, (meta.len() - len, len));
                video_order.push(vid);
            } else {
                let item = new.next().expect("peeked");
                let len = item.block.rows();
                data.extend_from_slice(item.block.as_slice());
                for r in 0..len {
                    meta.push((item.vid, item.ranges[r]));
                }
                masked.extend_from_slice(&item.masked);
                coverage.extend_from_slice(&item.coverage);
                video_rows.insert(item.vid, (meta.len() - len, len));
                video_order.push(item.vid);
            }
        }

        self.block = FeatureBlock::from_vec(total_rows, dim, data);
        self.unmasked = masked.iter().filter(|&&m| !m).count();
        self.meta = meta;
        self.masked = masked;
        self.coverage = coverage;
        self.video_rows = video_rows;
        self.video_order = video_order;
        // Row positions shifted: the sketch's positional assignments are
        // void (the next over-cap call refits from the merged rows), and so
        // are any positional caches keyed on the epoch.
        self.sketch = None;
        self.epoch += 1;
    }

    /// Masks windows covered by label records not yet applied (O(Δlabels ·
    /// windows-per-video) instead of the old full re-scan).
    fn sync_masks(&mut self, labels: &LabelStore) {
        let records = labels.records();
        for r in &records[self.labels_masked.min(records.len())..] {
            if let Some(&(start, len)) = self.video_rows.get(&r.vid) {
                for row in start..start + len {
                    if !self.masked[row] && self.meta[row].1.overlaps(&r.range) {
                        self.masked[row] = true;
                        self.unmasked -= 1;
                    }
                }
            }
        }
        self.labels_masked = records.len();
    }

    /// Ingests label records not yet represented in the coverage state: one
    /// anchor row lookup per new label (extracting the labeled video on
    /// demand, exactly like the old per-call labeled-block assembly) plus one
    /// O(n) coverage update per new anchor. Only coreset calls pay this.
    pub fn sync_anchors(&mut self, fm: &FeatureManager, corpus: &VideoCorpus, labels: &LabelStore) {
        let records = labels.records();
        for r in &records[self.anchors_ingested.min(records.len())..] {
            let row = fm
                .with_video_features(self.extractor, corpus, r.vid, |entry| {
                    entry.window_for(&r.range).map(|i| entry.row(i).to_vec())
                })
                .flatten();
            if let Some(row) = row {
                if self.anchors.rows() == 0 && self.anchors.dim() != row.len() {
                    self.anchors = FeatureBlock::empty(row.len());
                }
                self.anchors.push_row(&row);
                if !self.coverage.is_empty() {
                    self.block.min_sq_distances_update(&row, &mut self.coverage);
                }
            }
        }
        self.anchors_ingested = records.len();
    }

    /// Whether any labeled anchor has been ingested.
    pub fn has_anchors(&self) -> bool {
        self.anchors.rows() > 0
    }

    /// The coverage vector a selection call should consume: a scratch copy of
    /// the persistent anchor coverage (the call's own greedy picks must not
    /// leak into cross-iteration state), or the centroid seeding when no
    /// anchor exists yet (matching [`ve_al::coreset_selection`] with an empty
    /// labeled block).
    ///
    /// # Panics
    /// Panics on an empty index.
    pub fn coverage_for_call(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.coverage_for_call_into(&mut out);
        out
    }

    /// [`Self::coverage_for_call`] writing into a caller-owned buffer, so the
    /// ALM can reuse one scratch allocation across `select_segments` calls
    /// instead of allocating a fresh coverage copy per call.
    pub fn coverage_for_call_into(&self, out: &mut Vec<f32>) {
        if self.anchors.rows() == 0 {
            let centroid = self.block.centroid().expect("non-empty index");
            out.clear();
            out.resize(self.block.rows(), 0.0);
            self.block.sq_distances_to(&centroid, out);
        } else {
            out.clear();
            out.extend_from_slice(&self.coverage);
        }
    }

    /// The rows a selection call may pick from, ascending: every unmasked row
    /// when the pool fits under the candidate cap, otherwise the cluster
    /// sketch's structure-aware reduction (building or extending the sketch
    /// on demand).
    pub fn eligible_rows(&mut self) -> Vec<usize> {
        if self.unmasked == 0 {
            return Vec::new();
        }
        if self.unmasked <= self.candidate_cap {
            return (0..self.meta.len()).filter(|&r| !self.masked[r]).collect();
        }
        match &mut self.sketch {
            Some(sketch) => sketch.extend(&self.block),
            None => self.sketch = Some(ClusterSketch::build(&self.block, self.sketch_config)),
        }
        self.sketch
            .as_ref()
            .expect("sketch just ensured")
            .reduce(&self.masked, self.candidate_cap)
    }
}
