//! `ve-lint` — the repository's determinism & concurrency static-analysis
//! gate.
//!
//! The north-star invariant (ROADMAP.md) is that selection, training, and
//! storage state are **bit-identical at any worker/thread count** — a pure
//! function of inputs. That property dies by a thousand cuts: a `HashMap`
//! iteration here, an `Instant::now` there, a float sum whose order drifts
//! with a refactor. `ve-lint` encodes each of those cuts as a named rule
//! over a token-level model of the workspace (no registry access in this
//! environment, so the lexer and workspace reader are self-contained and
//! std-only), and CI runs it as a hard gate.
//!
//! Rules (see [`engine`] for the scoping policy and ROADMAP.md for the
//! contract prose):
//!
//! | rule | what it catches |
//! |---|---|
//! | `nondeterministic-iteration` | order-exposing HashMap/HashSet iteration in determinism-critical crates |
//! | `wall-clock-in-logic` | `Instant::now`/`SystemTime::now` outside `ve-sched`/`ve-bench` |
//! | `panic-in-task-path` | `unwrap`/`expect`/`panic!` reachable from executor-submitted closures |
//! | `lock-discipline` | lock-order cycles, lock-across-wait, recursive acquisition |
//! | `float-reduction-order` | ad-hoc float reductions outside the blessed `FeatureBlock` kernels |
//! | `executor-bypass` | raw `thread::spawn` outside `ve-sched` |
//!
//! Suppression: `// ve-lint: allow(<rule>) -- <reason>` on the offending
//! line or the line above. Grandfathered findings live in
//! `ve-lint.baseline`; stale entries fail the gate.

pub mod engine;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use engine::{
    analyze, parse_baseline, render_baseline, unsuppressed_findings, BaselineEntry, Finding,
    Report, RULE_MALFORMED_SUPPRESSION,
};
pub use workspace::{find_workspace_root, load_workspace, SourceFile, WorkspaceModel};
