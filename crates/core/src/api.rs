//! User-facing API value types (Table 1).

use ve_vidsim::{ClassId, TimeRange, VideoId};

/// A predicted activity with its probability.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Predicted class.
    pub class: ClassId,
    /// Model probability (softmax probability for single-label tasks,
    /// per-class sigmoid probability for multi-label tasks).
    pub probability: f32,
}

/// A video segment returned by `Watch` or `Explore`, annotated with the
/// current model's predictions (empty until enough labels exist to train a
/// model).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentRef {
    /// The video the segment belongs to.
    pub vid: VideoId,
    /// Time span of the segment.
    pub range: TimeRange,
    /// Predicted labels, sorted by decreasing probability.
    pub predictions: Vec<Prediction>,
}

impl SegmentRef {
    /// The most likely predicted class, if any prediction is available.
    pub fn top_prediction(&self) -> Option<&Prediction> {
        self.predictions.first()
    }
}

/// The result of one `Explore` (or `Watch`) call.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExploreBatch {
    /// Segments for the user to view and label.
    pub segments: Vec<SegmentRef>,
    /// Which acquisition function produced the batch (for diagnostics).
    pub acquisition: Option<ve_al::AcquisitionKind>,
    /// Selection statistics of the call (`None` for `Watch`), used by the
    /// latency accounting to count the extraction work the call had to do.
    pub stats: Option<crate::alm::SelectionStats>,
}

impl ExploreBatch {
    /// Number of segments in the batch.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_prediction_ordering() {
        let seg = SegmentRef {
            vid: VideoId(1),
            range: TimeRange::new(0.0, 1.0),
            predictions: vec![
                Prediction {
                    class: 2,
                    probability: 0.7,
                },
                Prediction {
                    class: 0,
                    probability: 0.2,
                },
            ],
        };
        assert_eq!(seg.top_prediction().unwrap().class, 2);
        let empty = SegmentRef {
            vid: VideoId(1),
            range: TimeRange::new(0.0, 1.0),
            predictions: vec![],
        };
        assert!(empty.top_prediction().is_none());
    }

    #[test]
    fn batch_len() {
        let batch = ExploreBatch::default();
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
    }
}
