//! Shared JSON emission for the `BENCH_*.json` artifacts.
//!
//! Every bench binary used to hand-roll its own `format!` JSON; the
//! regression sentinel (`ve-report`) made the writer side a contract, so the
//! five artifact emitters now share one builder with the properties the
//! sentinel relies on:
//!
//! * every artifact carries a `vocalexplore/...` `schema` marker and a
//!   `quick` flag (ratio rules only compare like-for-like runs);
//! * object keys render sorted, so artifacts diff cleanly and re-running a
//!   bench never reorders members;
//! * numbers are emitted at an explicit precision chosen by the caller, and
//!   non-finite values degrade to `null` instead of producing invalid JSON.

use std::collections::BTreeMap;

/// A JSON value with writer-controlled number formatting.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Pre-formatted number text (the constructor fixed the precision).
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    /// Members render key-sorted regardless of insertion order.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn u64(v: u64) -> Value {
        Value::Num(v.to_string())
    }

    pub fn usize(v: usize) -> Value {
        Value::Num(v.to_string())
    }

    /// `v` rendered with `decimals` fraction digits; non-finite → `null`.
    pub fn f64(v: f64, decimals: usize) -> Value {
        if v.is_finite() {
            Value::Num(format!("{v:.decimals$}"))
        } else {
            Value::Null
        }
    }

    pub fn opt_f64(v: Option<f64>, decimals: usize) -> Value {
        v.map_or(Value::Null, |x| Value::f64(x, decimals))
    }

    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => out.push_str(n),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&s.replace('\\', "\\\\").replace('"', "\\\""));
                out.push('"');
            }
            // Artifact arrays are small scalars (`depth_hwm: [4, 1, 50]`):
            // render inline.
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.render_into(out, indent);
                }
                out.push(']');
            }
            Value::Obj(members) if members.is_empty() => out.push_str("{}"),
            Value::Obj(members) => {
                out.push_str("{\n");
                let pad = "  ".repeat(indent + 1);
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad);
                    out.push('"');
                    out.push_str(k);
                    out.push_str("\": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// One `BENCH_*.json` artifact under construction. `schema` and `quick` are
/// mandatory at construction so no emitter can forget them.
pub struct Artifact {
    members: BTreeMap<String, Value>,
}

impl Artifact {
    pub fn new(schema: &str, quick: bool) -> Self {
        assert!(
            schema.starts_with("vocalexplore/"),
            "artifact schemas live under vocalexplore/"
        );
        let mut members = BTreeMap::new();
        members.insert("schema".to_string(), Value::str(schema));
        members.insert("quick".to_string(), Value::Bool(quick));
        Self { members }
    }

    pub fn field(mut self, key: &str, value: Value) -> Self {
        self.members.insert(key.to_string(), value);
        self
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        Value::Obj(self.members.clone()).render_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Writes the artifact to `path` and echoes it to stdout — the shared
    /// tail of every bench `main`.
    pub fn write(&self, path: &str) {
        let json = self.render();
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("{json}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_render_key_sorted_regardless_of_insertion_order() {
        let a = Artifact::new("vocalexplore/bench_x/v1", true)
            .field("zeta", Value::u64(1))
            .field(
                "alpha",
                Value::obj([("b", Value::u64(2)), ("a", Value::u64(3))]),
            );
        let b = Artifact::new("vocalexplore/bench_x/v1", true)
            .field(
                "alpha",
                Value::obj([("a", Value::u64(3)), ("b", Value::u64(2))]),
            )
            .field("zeta", Value::u64(1));
        assert_eq!(a.render(), b.render());
        let text = a.render();
        let alpha = text.find("\"alpha\"").unwrap();
        let zeta = text.find("\"zeta\"").unwrap();
        let quick = text.find("\"quick\"").unwrap();
        assert!(alpha < quick && quick < zeta, "{text}");
    }

    #[test]
    fn numbers_carry_explicit_precision_and_nonfinite_degrades_to_null() {
        assert_eq!(Value::f64(718.44, 1), Value::Num("718.4".to_string()));
        assert_eq!(Value::f64(2.0, 3), Value::Num("2.000".to_string()));
        assert_eq!(Value::f64(f64::NAN, 1), Value::Null);
        assert_eq!(Value::f64(f64::INFINITY, 1), Value::Null);
        assert_eq!(Value::opt_f64(None, 1), Value::Null);
    }

    #[test]
    fn rendered_artifacts_parse_back_and_escape_strings() {
        let text = Artifact::new("vocalexplore/bench_x/v1", false)
            .field("note", Value::str("a\"b\\c"))
            .field(
                "arr",
                Value::Arr(vec![Value::u64(4), Value::u64(1), Value::u64(50)]),
            )
            .field(
                "nested",
                Value::obj([("empty", Value::Obj(BTreeMap::new()))]),
            )
            .render();
        assert!(text.contains("\"arr\": [4, 1, 50]"), "{text}");
        assert!(text.contains("a\\\"b\\\\c"), "{text}");
        assert!(text.contains("\"empty\": {}"), "{text}");
        assert!(text.ends_with("}\n"));
    }
}
