//! `lock-discipline`: a static lock-order graph over the repository's known
//! mutexes, plus lock-across-wait and recursive-acquisition checks.
//!
//! **Contract.** The executor's PR 2 deadlock class was exactly this: a
//! panic path that kept the queue lock across a wait. With a fixed, small
//! set of long-lived locks we can enforce discipline statically:
//!
//! * a **total order** between lock classes — acquiring B while holding A
//!   creates the edge A→B; a cycle in the edge set is a potential deadlock;
//! * **no blocking wait while holding an unrelated lock** — `wait*`/`join`
//!   with a guard live (condvar waits naming the guard they atomically
//!   release are fine);
//! * **no re-acquisition of a class already held** (std mutexes are not
//!   reentrant — that is self-deadlock, or at best UB-adjacent).
//!
//! **Lock classes** are keyed by `(crate, receiver identifier)` — the field
//! name right before `.lock()`/`.read()`/`.write()`. That is deliberately
//! name-based: the repo's guards live in fields with stable, distinctive
//! names, and the table below is the registry a new lock must be added to.
//!
//! **Guard lifetimes** are approximated lexically: a `let`-bound guard lives
//! to the end of its enclosing block (or an explicit `drop(g)`); a guard in
//! an expression statement lives to the end of that statement.

use crate::engine::{Finding, RULE_LOCK_DISCIPLINE};
use crate::lexer::TokenKind;
use crate::rules::method_call;
use crate::workspace::{SourceFile, WorkspaceModel};
use std::collections::{BTreeMap, BTreeSet};

/// The lock registry: `(crate, receiver ident, class name)`.
const LOCK_CLASSES: &[(&str, &str, &str)] = &[
    ("ve-sched", "state", "executor.queue"),
    ("ve-sched", "result", "executor.task_handle"),
    ("ve-sched", "injected", "fault.injected"),
    ("ve-storage", "inner", "storage.inner"),
    ("vocalexplore", "registry", "model_registry"),
    ("vocalexplore", "warm", "mm.warm"),
    ("vocalexplore", "stats", "mm.stats"),
    ("vocalexplore", "gpu_seconds", "fm.gpu_seconds"),
    ("ve-vidsim", "rng", "oracle.rng"),
    ("ve-obs", "ledger", "obs.ledger"),
    ("ve-obs", "timings", "obs.timings"),
    ("ve-obs", "series", "obs.metrics"),
    ("ve-report", "findings", "report.findings"),
];

const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];
const WAIT_METHODS: &[&str] = &[
    "wait",
    "wait_for",
    "wait_timeout",
    "wait_while",
    "wait_idle",
    "join",
];

/// A live guard during the linear scan of one file.
struct Guard {
    class: &'static str,
    /// Binding name, if `let`-bound.
    name: Option<String>,
    /// Code-index of the acquisition (for wait-arg self-exemption).
    acquired_at: usize,
    /// Code-index past which the guard is dead.
    end: usize,
    line: u32,
}

/// One observed "acquired B while holding A" edge.
struct Edge {
    file: usize,
    line: u32,
    col: u32,
}

pub fn check(ws: &WorkspaceModel) -> Vec<Finding> {
    let mut out = Vec::new();
    // held-class → acquired-class → first site observed.
    let mut edges: BTreeMap<(&'static str, &'static str), Edge> = BTreeMap::new();

    for (fi, file) in ws.files.iter().enumerate() {
        let classes: Vec<(&str, &'static str)> = LOCK_CLASSES
            .iter()
            .filter(|(c, _, _)| *c == file.crate_name)
            .map(|&(_, recv, class)| (recv, class))
            .collect();
        if classes.is_empty() {
            continue;
        }
        scan_file(file, fi, &classes, &mut edges, &mut out);
    }

    // Cycle detection over the edge set.
    report_cycles(ws, &edges, &mut out);
    out
}

fn scan_file(
    file: &SourceFile,
    fi: usize,
    classes: &[(&str, &'static str)],
    edges: &mut BTreeMap<(&'static str, &'static str), Edge>,
    out: &mut Vec<Finding>,
) {
    let mut held: Vec<Guard> = Vec::new();
    for ci in 0..file.code.len() {
        held.retain(|g| g.end >= ci);
        let Some(tok) = file.ct(ci) else { break };
        if file.is_test_line(tok.line) {
            continue;
        }

        // `drop(g)` releases a named guard early.
        if tok.is_ident("drop") && file.ct(ci + 1).is_some_and(|t| t.is_punct('(')) {
            if let Some(arg) = file.ct(ci + 2) {
                if arg.kind == TokenKind::Ident {
                    held.retain(|g| g.name.as_deref() != Some(arg.text.as_str()));
                }
            }
            continue;
        }

        // Acquisition: `<recv> . lock|read|write (` for a registered recv.
        if tok.kind == TokenKind::Ident {
            if let Some(&(_, class)) = classes.iter().find(|(r, _)| tok.is_ident(r)) {
                if let Some(m) = ACQUIRE_METHODS
                    .iter()
                    .find_map(|m| method_call(file, ci + 1, m).map(|_| *m))
                {
                    for g in &held {
                        if g.class == class {
                            out.push(Finding::new(
                                RULE_LOCK_DISCIPLINE,
                                file,
                                tok.line,
                                tok.col,
                                format!(
                                    "re-acquisition of lock class `{class}` (already held \
                                     since line {}): std locks are not reentrant — this is \
                                     self-deadlock",
                                    g.line
                                ),
                            ));
                        } else {
                            edges.entry((g.class, class)).or_insert(Edge {
                                file: fi,
                                line: tok.line,
                                col: tok.col,
                            });
                        }
                    }
                    let (name, end) = guard_lifetime(file, ci);
                    held.push(Guard {
                        class,
                        name,
                        acquired_at: ci,
                        end,
                        line: tok.line,
                    });
                    let _ = m;
                    continue;
                }
            }
        }

        // Blocking wait while holding a lock the wait does not release.
        if let Some((m, open)) = WAIT_METHODS
            .iter()
            .find_map(|m| method_call(file, ci, m).map(|open| (*m, open)))
        {
            let close = file.matching_close(open);
            // `Vec::join(", ")` is string joining, not thread joining.
            if m == "join"
                && (open + 1..close)
                    .filter_map(|j| file.ct(j))
                    .any(|t| t.kind == TokenKind::StrLit)
            {
                continue;
            }
            let args: BTreeSet<&str> = (open + 1..close)
                .filter_map(|j| file.ct(j))
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.as_str())
                .collect();
            let offenders: Vec<&Guard> = held
                .iter()
                .filter(|g| {
                    // A condvar wait atomically releases the guard it is
                    // passed; a guard acquired inside the arg list is the
                    // same thing spelled inline.
                    let named = g.name.as_deref().is_some_and(|n| args.contains(n));
                    let inline = g.acquired_at > open && g.acquired_at < close;
                    !named && !inline
                })
                .collect();
            if let Some(g) = offenders.first() {
                let t = file.ct(ci + 1).expect("matched");
                out.push(Finding::new(
                    RULE_LOCK_DISCIPLINE,
                    file,
                    t.line,
                    t.col,
                    format!(
                        "blocking `.{m}(…)` while holding lock class `{}` (acquired line \
                         {}): waits must not pin unrelated locks — the PR 2 executor \
                         deadlock was exactly this shape",
                        g.class, g.line
                    ),
                ));
            }
        }
    }
}

/// Lifetime of the guard acquired at code-index `ci` (the receiver token):
/// binding name if `let`-bound, and the code-index its lifetime ends at.
fn guard_lifetime(file: &SourceFile, ci: usize) -> (Option<String>, usize) {
    // Walk back over the field chain (`self . inner . state`) to see whether
    // the acquisition is the RHS of a `let`.
    let mut j = ci;
    while j >= 2
        && file.ct(j - 1).is_some_and(|t| t.is_punct('.'))
        && file.ct(j - 2).is_some_and(|t| t.kind == TokenKind::Ident)
    {
        j -= 2;
    }
    let let_name = if j >= 2 && file.ct(j - 1).is_some_and(|t| t.is_punct('=')) {
        let name_tok = file.ct(j - 2);
        let is_let = (j >= 3 && file.ct(j - 3).is_some_and(|t| t.is_ident("let")))
            || (j >= 4
                && file.ct(j - 3).is_some_and(|t| t.is_ident("mut"))
                && file.ct(j - 4).is_some_and(|t| t.is_ident("let")));
        match name_tok {
            Some(t) if is_let && t.kind == TokenKind::Ident => Some(t.text.clone()),
            _ => None,
        }
    } else {
        None
    };

    if let_name.is_some() {
        // Lives to the end of the enclosing block.
        let mut depth = 0i64;
        let mut k = ci;
        while let Some(t) = file.ct(k) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    return (let_name, k);
                }
            }
            k += 1;
        }
        (let_name, file.code.len())
    } else {
        // Transient: lives to the end of the statement.
        let mut depth = 0i64;
        let mut k = ci;
        while let Some(t) = file.ct(k) {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" => depth -= 1,
                "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return (None, k);
                    }
                }
                ";" if depth == 0 => return (None, k),
                _ => {}
            }
            k += 1;
        }
        (None, file.code.len())
    }
}

/// DFS over the held→acquired edge set; every elementary cycle is reported
/// once at the site of its lexicographically first edge.
fn report_cycles(
    ws: &WorkspaceModel,
    edges: &BTreeMap<(&'static str, &'static str), Edge>,
    out: &mut Vec<Finding>,
) {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for &(a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut seen_cycles: BTreeSet<Vec<&str>> = BTreeSet::new();

    for &start in &nodes {
        // DFS looking for a path back to `start`.
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, vec![start])];
        while let Some((node, path)) = stack.pop() {
            for &next in adj.get(node).into_iter().flatten() {
                if next == start {
                    // Normalize: rotate so the smallest node leads.
                    let mut cycle = path.clone();
                    let min_pos = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, n)| **n)
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    cycle.rotate_left(min_pos);
                    if !seen_cycles.insert(cycle.clone()) {
                        continue;
                    }
                    let (a, b) = (cycle[0], cycle[(1).min(cycle.len() - 1)]);
                    let site = edges
                        .get(&lookup(edges, a, b))
                        .expect("edge exists by construction");
                    let file = &ws.files[site.file];
                    let mut order = cycle.join("` → `");
                    order.push_str("` → `");
                    order.push_str(cycle[0]);
                    out.push(Finding::new(
                        RULE_LOCK_DISCIPLINE,
                        file,
                        site.line,
                        site.col,
                        format!(
                            "lock-order cycle `{order}`: two threads taking these locks \
                             in opposing orders can deadlock — pick one global order and \
                             restructure this acquisition"
                        ),
                    ));
                } else if !path.contains(&next) {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
}

/// Finds the concrete `'static` key for edge (a, b).
fn lookup(
    edges: &BTreeMap<(&'static str, &'static str), Edge>,
    a: &str,
    b: &str,
) -> (&'static str, &'static str) {
    edges
        .keys()
        .copied()
        .find(|&(x, y)| x == a && y == b)
        .expect("edge exists by construction")
}
