//! Contiguous feature blocks and the vectorized distance kernels built on
//! them.
//!
//! The acquisition functions (`ve-al`) and batch inference (`vocalexplore`'s
//! Model Manager) scan tens of thousands of feature vectors per `Explore`
//! call. Storing those vectors as `Vec<Vec<f32>>` scatters every row behind a
//! pointer, defeats hardware prefetching, and forces scalar per-pair distance
//! loops. [`FeatureBlock`] fixes the layout: one row-major [`Matrix`] holding
//! all rows plus cached squared norms, so that
//!
//! * a squared Euclidean distance becomes
//!   `‖a − b‖² = ‖a‖² + ‖b‖² − 2·a·b` — one fused dot product over
//!   contiguous memory instead of a subtract-square-accumulate loop,
//! * one-vs-all distance scans ([`FeatureBlock::sq_distances_to`]) stream the
//!   block once and parallelize across `ve-sched`'s data-parallel helper, and
//! * all-pairs scans ([`FeatureBlock::pairwise_sq_distances`]) proceed in
//!   row blocks that stay cache-resident.
//!
//! # Determinism contract
//!
//! Every kernel here produces bit-identical output regardless of the
//! configured thread count (`ve_sched::parallel::set_parallelism`): work is
//! chunked at fixed boundaries and each chunk writes a disjoint output
//! region. Selection tie-breaks in `ve-al` (always "first index wins") are
//! therefore stable across machines and configurations.

use crate::tensor::Matrix;
use ve_sched::parallel::{par_chunks_mut, par_map, par_map_tasks};

/// A contiguous, row-major block of feature vectors with cached squared
/// norms.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureBlock {
    data: Matrix,
    sq_norms: Vec<f32>,
}

impl FeatureBlock {
    /// Wraps a row-major matrix, caching per-row squared norms.
    pub fn from_matrix(data: Matrix) -> Self {
        let sq_norms = (0..data.rows()).map(|r| sq_norm(data.row(r))).collect();
        Self { data, sq_norms }
    }

    /// Builds a block from row slices.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        Self::from_matrix(Matrix::from_rows(rows))
    }

    /// Builds a block from nested vectors (the legacy `&[Vec<f32>]`
    /// representation).
    ///
    /// # Panics
    /// Panics if the rows have differing lengths.
    pub fn from_nested(rows: &[Vec<f32>]) -> Self {
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        Self::from_rows(&refs)
    }

    /// Builds a block from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * dim`.
    pub fn from_vec(rows: usize, dim: usize, data: Vec<f32>) -> Self {
        Self::from_matrix(Matrix::from_vec(rows, dim, data))
    }

    /// An empty block of the given dimensionality.
    pub fn empty(dim: usize) -> Self {
        Self {
            data: Matrix::zeros(0, dim),
            sq_norms: Vec::new(),
        }
    }

    /// Number of rows (feature vectors).
    pub fn rows(&self) -> usize {
        self.data.rows()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.data.cols()
    }

    /// Whether the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// Zero-copy view of row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        self.data.row(r)
    }

    /// Cached `‖row r‖²`.
    pub fn sq_norm(&self, r: usize) -> f32 {
        self.sq_norms[r]
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.data
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Iterates over row views.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        (0..self.rows()).map(move |r| self.row(r))
    }

    /// Appends one row to the block, updating the cached norms. This is the
    /// ingest path of persistent candidate indexes (the ALM's
    /// `AcquisitionIndex`), which grow a long-lived block incrementally
    /// instead of rebuilding it from scratch every call.
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the block's dimensionality.
    pub fn push_row(&mut self, row: &[f32]) {
        self.data.push_row(row);
        self.sq_norms.push(sq_norm(row));
    }

    /// Reserves capacity for `additional` more rows.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.data.reserve_rows(additional);
        self.sq_norms.reserve(additional);
    }

    /// Copies the selected rows into a new block (row `k` of the result is
    /// `self.row(idx[k])`).
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn gather(&self, idx: &[usize]) -> Self {
        let dim = self.dim();
        let mut data = Vec::with_capacity(idx.len() * dim);
        let mut sq_norms = Vec::with_capacity(idx.len());
        for &i in idx {
            data.extend_from_slice(self.row(i));
            sq_norms.push(self.sq_norms[i]);
        }
        Self {
            data: Matrix::from_vec(idx.len(), dim, data),
            sq_norms,
        }
    }

    /// The per-dimension mean of all rows (the centroid), or `None` for an
    /// empty block.
    pub fn centroid(&self) -> Option<Vec<f32>> {
        if self.is_empty() {
            return None;
        }
        let dim = self.dim();
        let mut sums = vec![0.0f64; dim];
        for row in self.iter_rows() {
            for (s, &v) in sums.iter_mut().zip(row) {
                *s += v as f64;
            }
        }
        let inv = 1.0 / self.rows() as f64;
        Some(sums.iter().map(|&s| (s * inv) as f32).collect())
    }

    /// Writes `‖row_i − q‖²` for every row into `out`, using the cached norm
    /// identity. Results are clamped at zero (the identity can go slightly
    /// negative in floating point). Parallel across rows for large blocks.
    ///
    /// # Panics
    /// Panics if `q.len() != dim` or `out.len() != rows`.
    pub fn sq_distances_to(&self, q: &[f32], out: &mut [f32]) {
        assert_eq!(q.len(), self.dim(), "query dimension mismatch");
        assert_eq!(out.len(), self.rows(), "output length mismatch");
        let q_sq = sq_norm(q);
        par_chunks_mut(out, |start, piece| {
            for (k, d) in piece.iter_mut().enumerate() {
                let r = start + k;
                let dot_rq = dot_fast(self.row(r), q);
                *d = (self.sq_norms[r] + q_sq - 2.0 * dot_rq).max(0.0);
            }
        });
    }

    /// Lowers `min_dist[i]` to `‖row_i − q‖²` wherever the new distance is
    /// smaller — the coreset coverage update — in one parallel pass.
    ///
    /// # Panics
    /// Panics if `q.len() != dim` or `min_dist.len() != rows`.
    pub fn min_sq_distances_update(&self, q: &[f32], min_dist: &mut [f32]) {
        assert_eq!(q.len(), self.dim(), "query dimension mismatch");
        assert_eq!(min_dist.len(), self.rows(), "output length mismatch");
        let q_sq = sq_norm(q);
        par_chunks_mut(min_dist, |start, piece| {
            for (k, d) in piece.iter_mut().enumerate() {
                let r = start + k;
                let nd = (self.sq_norms[r] + q_sq - 2.0 * dot_fast(self.row(r), q)).max(0.0);
                if nd < *d {
                    *d = nd;
                }
            }
        });
    }

    /// For every row, the minimum squared distance to any row of `others`
    /// (`f32::INFINITY` when `others` is empty). One blocked, parallel scan.
    ///
    /// # Panics
    /// Panics if the dimensionalities differ.
    pub fn min_sq_distances_to_block(&self, others: &FeatureBlock) -> Vec<f32> {
        assert_eq!(self.dim(), others.dim(), "dimension mismatch");
        let mut out = vec![f32::INFINITY; self.rows()];
        if others.is_empty() {
            return out;
        }
        par_chunks_mut(&mut out, |start, piece| {
            for (k, d) in piece.iter_mut().enumerate() {
                let r = start + k;
                let row = self.row(r);
                let r_sq = self.sq_norms[r];
                let mut best = f32::INFINITY;
                for o in 0..others.rows() {
                    let nd =
                        (r_sq + others.sq_norms[o] - 2.0 * dot_fast(row, others.row(o))).max(0.0);
                    if nd < best {
                        best = nd;
                    }
                }
                *d = best;
            }
        });
        out
    }

    /// The full `self.rows() × other.rows()` matrix of squared distances,
    /// computed block-by-block with the norm identity. Parallel across rows
    /// of `self`.
    ///
    /// # Panics
    /// Panics if the dimensionalities differ.
    pub fn pairwise_sq_distances(&self, other: &FeatureBlock) -> Matrix {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        let (n, m) = (self.rows(), other.rows());
        // One preallocated flat buffer, filled in place by disjoint chunks —
        // no per-row allocations and no second copy into the Matrix.
        let mut data = vec![0.0f32; n * m];
        if m > 0 {
            par_chunks_mut(&mut data, |start, piece| {
                for (k, d) in piece.iter_mut().enumerate() {
                    let idx = start + k;
                    let (i, j) = (idx / m, idx % m);
                    *d = (self.sq_norms[i] + other.sq_norms[j]
                        - 2.0 * dot_fast(self.row(i), other.row(j)))
                    .max(0.0);
                }
            });
        }
        Matrix::from_vec(n, m, data)
    }

    /// For every row, the index of the nearest row of `centroids` (ties:
    /// first index wins) — the k-means assignment step, parallel across rows.
    ///
    /// # Panics
    /// Panics if the dimensionalities differ or `centroids` is empty.
    pub fn nearest_rows(&self, centroids: &FeatureBlock) -> Vec<usize> {
        assert_eq!(self.dim(), centroids.dim(), "dimension mismatch");
        assert!(!centroids.is_empty(), "need at least one centroid");
        par_map(self.rows(), |r| {
            let row = self.row(r);
            let r_sq = self.sq_norms[r];
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..centroids.rows() {
                let d =
                    (r_sq + centroids.sq_norms[c] - 2.0 * dot_fast(row, centroids.row(c))).max(0.0);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            best
        })
    }
}

/// Incremental builder used when rows arrive one at a time (candidate
/// assembly in the ALM).
#[derive(Debug, Clone)]
pub struct FeatureBlockBuilder {
    dim: Option<usize>,
    data: Vec<f32>,
    rows: usize,
}

impl FeatureBlockBuilder {
    /// An empty builder; the dimensionality is fixed by the first row pushed.
    pub fn new() -> Self {
        Self {
            dim: None,
            data: Vec::new(),
            rows: 0,
        }
    }

    /// A builder expecting `rows` rows of `dim` values (pre-allocates).
    pub fn with_capacity(rows: usize, dim: usize) -> Self {
        Self {
            dim: Some(dim),
            data: Vec::with_capacity(rows * dim),
            rows: 0,
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if `row.len()` differs from previously pushed rows.
    pub fn push_row(&mut self, row: &[f32]) {
        match self.dim {
            None => self.dim = Some(row.len()),
            Some(d) => assert_eq!(row.len(), d, "ragged rows"),
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Finalizes into a block (dimension 0 if no rows were pushed).
    pub fn build(self) -> FeatureBlock {
        let dim = self.dim.unwrap_or(0);
        FeatureBlock::from_vec(self.rows, dim, self.data)
    }
}

impl Default for FeatureBlockBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Items per argmax chunk. The boundaries are **fixed** (independent of the
/// configured thread count): each chunk reports its local first-index-wins
/// maximum and the chunk results are combined in ascending chunk order with a
/// strict `>`, so the global winner is identical to a sequential ascending
/// scan at any parallelism setting.
const ARGMAX_CHUNK: usize = 4096;

/// First-index-wins argmax over `values` (`None` when empty or when every
/// value is `-∞`), chunk-parallel for large inputs.
///
/// This is the per-step selection scan of the greedy acquisition kernels
/// (coreset's farthest-point step, k-means++ seeding): a sequential ascending
/// scan with strict `>` replacement, fanned out over fixed-size chunks so a
/// 20k-candidate pool uses the worker threads without changing the result.
pub fn argmax_chunked(values: &[f32]) -> Option<usize> {
    let scan = |start: usize, end: usize| {
        let mut best = None;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in values[start..end].iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = Some(start + i);
            }
        }
        best.map(|i| (i, best_v))
    };
    let num_chunks = values.len().div_ceil(ARGMAX_CHUNK);
    if num_chunks <= 1 {
        // One chunk: skip the fan-out bookkeeping entirely (identical
        // result — a single chunk is already a plain ascending scan).
        return scan(0, values.len()).map(|(i, _)| i);
    }
    let bests = par_map_tasks(num_chunks, |c| {
        let start = c * ARGMAX_CHUNK;
        scan(start, (start + ARGMAX_CHUNK).min(values.len()))
    });
    combine_chunk_maxima(bests)
}

/// [`argmax_chunked`] restricted to the `eligible` positions (ascending
/// unique indices into `values`), skipping positions where `excluded` is
/// set. Returns the winning *value index*, honoring first-eligible-wins
/// ties.
///
/// # Panics
/// Panics if an eligible index is out of range of `values` or `excluded`.
pub fn argmax_chunked_filtered(
    values: &[f32],
    eligible: &[usize],
    excluded: &[bool],
) -> Option<usize> {
    if eligible.len() == values.len() {
        // `eligible` holds ascending unique indices into `values`, so a full
        // count means it is exactly 0..n: scan the value slice directly and
        // skip the index indirection (the common case for from-scratch
        // callers like `coreset_selection`).
        let scan = |start: usize, end: usize| {
            let mut best = None;
            let mut best_v = f32::NEG_INFINITY;
            for (k, &v) in values[start..end].iter().enumerate() {
                if !excluded[start + k] && v > best_v {
                    best_v = v;
                    best = Some(start + k);
                }
            }
            best.map(|i| (i, best_v))
        };
        let num_chunks = values.len().div_ceil(ARGMAX_CHUNK);
        if num_chunks <= 1 {
            return scan(0, values.len()).map(|(i, _)| i);
        }
        let bests = par_map_tasks(num_chunks, |c| {
            let start = c * ARGMAX_CHUNK;
            scan(start, (start + ARGMAX_CHUNK).min(values.len()))
        });
        return combine_chunk_maxima(bests);
    }
    let scan = |start: usize, end: usize| {
        let mut best = None;
        let mut best_v = f32::NEG_INFINITY;
        for &i in &eligible[start..end] {
            if excluded[i] {
                continue;
            }
            let v = values[i];
            if v > best_v {
                best_v = v;
                best = Some(i);
            }
        }
        best.map(|i| (i, best_v))
    };
    let num_chunks = eligible.len().div_ceil(ARGMAX_CHUNK);
    if num_chunks <= 1 {
        return scan(0, eligible.len()).map(|(i, _)| i);
    }
    let bests = par_map_tasks(num_chunks, |c| {
        let start = c * ARGMAX_CHUNK;
        scan(start, (start + ARGMAX_CHUNK).min(eligible.len()))
    });
    combine_chunk_maxima(bests)
}

/// Combines per-chunk `(index, value)` maxima in ascending chunk order with a
/// strict `>`, preserving the first-index-wins tie-break.
fn combine_chunk_maxima(bests: Vec<Option<(usize, f32)>>) -> Option<usize> {
    let mut winner = None;
    let mut winner_v = f32::NEG_INFINITY;
    for (i, v) in bests.into_iter().flatten() {
        if v > winner_v {
            winner_v = v;
            winner = Some(i);
        }
    }
    winner
}

/// Chunked dot product: eight independent accumulators let the compiler keep
/// eight FMA/SIMD chains in flight instead of one serial add chain. The
/// `chunks_exact` walk is bounds-check-free, which is what lets LLVM
/// vectorize the body.
#[inline]
pub fn dot_fast(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let a_chunks = a.chunks_exact(LANES);
    let b_chunks = b.chunks_exact(LANES);
    let mut tail = 0.0f32;
    for (x, y) in a_chunks.remainder().iter().zip(b_chunks.remainder()) {
        tail += x * y;
    }
    for (xs, ys) in a_chunks.zip(b_chunks) {
        for l in 0..LANES {
            acc[l] += xs[l] * ys[l];
        }
    }
    let mut total = tail;
    for lane in acc {
        total += lane;
    }
    total
}

/// `‖x‖²` with the same chunked accumulation as [`dot_fast`].
#[inline]
pub fn sq_norm(x: &[f32]) -> f32 {
    dot_fast(x, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::squared_distance;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_block(n: usize, dim: usize, seed: u64) -> (Vec<Vec<f32>>, FeatureBlock) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f32>() * 4.0 - 2.0).collect())
            .collect();
        let block = FeatureBlock::from_nested(&rows);
        (rows, block)
    }

    #[test]
    fn rows_round_trip_and_norms_cached() {
        let (rows, block) = random_block(17, 9, 1);
        assert_eq!(block.rows(), 17);
        assert_eq!(block.dim(), 9);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(block.row(i), r.as_slice());
            let expected: f32 = r.iter().map(|v| v * v).sum();
            assert!((block.sq_norm(i) - expected).abs() <= 1e-4 * expected.abs().max(1.0));
        }
    }

    #[test]
    fn dot_fast_matches_naive() {
        let (rows, _) = random_block(2, 131, 2);
        let naive: f32 = rows[0].iter().zip(&rows[1]).map(|(x, y)| x * y).sum();
        let fast = dot_fast(&rows[0], &rows[1]);
        assert!((naive - fast).abs() <= 1e-3, "{naive} vs {fast}");
    }

    #[test]
    fn sq_distances_to_matches_scalar_loop() {
        let (rows, block) = random_block(40, 33, 3);
        let q: Vec<f32> = rows[7].iter().map(|v| v + 0.25).collect();
        let mut out = vec![0.0f32; 40];
        block.sq_distances_to(&q, &mut out);
        for (i, r) in rows.iter().enumerate() {
            let naive = squared_distance(r, &q);
            assert!(
                (out[i] - naive).abs() <= 1e-3 * naive.max(1.0),
                "row {i}: {} vs {naive}",
                out[i]
            );
        }
    }

    #[test]
    fn distance_to_self_is_zero_after_clamp() {
        let (rows, block) = random_block(8, 64, 4);
        let mut out = vec![0.0f32; 8];
        block.sq_distances_to(&rows[3], &mut out);
        assert!(
            out[3] >= 0.0 && out[3] <= 1e-3,
            "self distance ~0, got {}",
            out[3]
        );
    }

    #[test]
    fn pairwise_matches_scalar_loops() {
        let (rows, block) = random_block(12, 21, 5);
        let (other_rows, other) = random_block(9, 21, 6);
        let d = block.pairwise_sq_distances(&other);
        assert_eq!(d.rows(), 12);
        assert_eq!(d.cols(), 9);
        for (i, row) in rows.iter().enumerate() {
            for (j, other_row) in other_rows.iter().enumerate() {
                let naive = squared_distance(row, other_row);
                assert!(
                    (d.get(i, j) - naive).abs() <= 1e-3 * naive.max(1.0),
                    "({i},{j}): {} vs {naive}",
                    d.get(i, j)
                );
            }
        }
    }

    #[test]
    fn min_update_and_block_min_agree_with_naive() {
        let (rows, block) = random_block(30, 17, 7);
        let (label_rows, labels) = random_block(5, 17, 8);
        let mins = block.min_sq_distances_to_block(&labels);
        for (i, r) in rows.iter().enumerate() {
            let naive = label_rows
                .iter()
                .map(|l| squared_distance(r, l))
                .fold(f32::INFINITY, f32::min);
            assert!((mins[i] - naive).abs() <= 1e-3 * naive.max(1.0));
        }
        // min_sq_distances_update lowers entries only.
        let mut running = vec![f32::INFINITY; 30];
        for l in &label_rows {
            block.min_sq_distances_update(l, &mut running);
        }
        for (a, b) in running.iter().zip(&mins) {
            assert!((a - b).abs() <= 1e-3 * b.max(1.0));
        }
    }

    #[test]
    fn nearest_rows_ties_prefer_first_index() {
        // Two identical centroids: every point must map to centroid 0.
        let block = FeatureBlock::from_nested(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let centroids = FeatureBlock::from_nested(&[vec![0.5, 0.5], vec![0.5, 0.5]]);
        assert_eq!(block.nearest_rows(&centroids), vec![0, 0]);
    }

    #[test]
    fn gather_and_centroid() {
        let (rows, block) = random_block(10, 4, 9);
        let sub = block.gather(&[3, 3, 7]);
        assert_eq!(sub.rows(), 3);
        assert_eq!(sub.row(0), rows[3].as_slice());
        assert_eq!(sub.row(1), rows[3].as_slice());
        assert_eq!(sub.row(2), rows[7].as_slice());
        let c = block.centroid().unwrap();
        for d in 0..4 {
            let mean: f32 = rows.iter().map(|r| r[d]).sum::<f32>() / 10.0;
            assert!((c[d] - mean).abs() < 1e-4);
        }
        assert!(FeatureBlock::empty(4).centroid().is_none());
    }

    #[test]
    fn builder_accumulates_rows() {
        let mut b = FeatureBlockBuilder::new();
        assert!(b.is_empty());
        b.push_row(&[1.0, 2.0]);
        b.push_row(&[3.0, 4.0]);
        assert_eq!(b.len(), 2);
        let block = b.build();
        assert_eq!(block.rows(), 2);
        assert_eq!(block.row(1), &[3.0, 4.0]);
        assert_eq!(FeatureBlockBuilder::new().build().rows(), 0);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let (_, block) = random_block(2_000, 32, 10);
        let q: Vec<f32> = (0..32).map(|i| i as f32 * 0.1).collect();
        let mut single = vec![0.0f32; 2_000];
        let mut multi = vec![0.0f32; 2_000];
        let _guard = ve_sched::parallel::test_parallelism_guard();
        ve_sched::parallel::set_parallelism(1);
        block.sq_distances_to(&q, &mut single);
        ve_sched::parallel::set_parallelism(8);
        block.sq_distances_to(&q, &mut multi);
        ve_sched::parallel::set_parallelism(0);
        assert_eq!(
            single.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            multi.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn push_row_grows_block_and_caches_norms() {
        let mut block = FeatureBlock::empty(3);
        block.reserve_rows(2);
        block.push_row(&[1.0, 2.0, 2.0]);
        block.push_row(&[0.0, 3.0, 4.0]);
        assert_eq!(block.rows(), 2);
        assert_eq!(block.row(1), &[0.0, 3.0, 4.0]);
        assert_eq!(block.sq_norm(0), 9.0);
        assert_eq!(block.sq_norm(1), 25.0);
        // Pushed rows behave exactly like built rows in the kernels.
        let rebuilt = FeatureBlock::from_nested(&[vec![1.0, 2.0, 2.0], vec![0.0, 3.0, 4.0]]);
        assert_eq!(block, rebuilt);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn push_row_rejects_wrong_dim() {
        FeatureBlock::empty(3).push_row(&[1.0]);
    }

    #[test]
    fn argmax_chunked_matches_sequential_scan() {
        let (_, block) = random_block(1, 9_001, 12);
        let values = block.row(0);
        let seq = values
            .iter()
            .enumerate()
            .fold((None, f32::NEG_INFINITY), |(best, bv), (i, &v)| {
                if v > bv {
                    (Some(i), v)
                } else {
                    (best, bv)
                }
            })
            .0;
        assert_eq!(argmax_chunked(values), seq);
        assert_eq!(argmax_chunked(&[]), None);
        assert_eq!(argmax_chunked(&[f32::NEG_INFINITY]), None);
        // Ties pick the first index, also across chunk boundaries.
        let tied = vec![7.0f32; 10_000];
        assert_eq!(argmax_chunked(&tied), Some(0));
    }

    #[test]
    fn argmax_filtered_respects_eligibility_and_exclusion() {
        let values = [1.0f32, 9.0, 3.0, 9.0, 2.0];
        let all: Vec<usize> = (0..5).collect();
        let mut excluded = vec![false; 5];
        assert_eq!(argmax_chunked_filtered(&values, &all, &excluded), Some(1));
        excluded[1] = true;
        assert_eq!(argmax_chunked_filtered(&values, &all, &excluded), Some(3));
        // Restricting eligibility skips the global maximum.
        assert_eq!(
            argmax_chunked_filtered(&values, &[0, 2, 4], &[false; 5]),
            Some(2)
        );
        assert_eq!(argmax_chunked_filtered(&values, &[], &excluded), None);
    }

    #[test]
    fn argmax_identical_across_thread_counts() {
        let (_, block) = random_block(1, 30_000, 13);
        let values = block.row(0);
        let eligible: Vec<usize> = (0..values.len()).step_by(3).collect();
        let excluded = vec![false; values.len()];
        let _guard = ve_sched::parallel::test_parallelism_guard();
        ve_sched::parallel::set_parallelism(1);
        let single = (
            argmax_chunked(values),
            argmax_chunked_filtered(values, &eligible, &excluded),
        );
        ve_sched::parallel::set_parallelism(8);
        let multi = (
            argmax_chunked(values),
            argmax_chunked_filtered(values, &eligible, &excluded),
        );
        ve_sched::parallel::set_parallelism(0);
        assert_eq!(single, multi);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn builder_rejects_ragged_rows() {
        let mut b = FeatureBlockBuilder::new();
        b.push_row(&[1.0]);
        b.push_row(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn distance_rejects_bad_query_dim() {
        let (_, block) = random_block(4, 8, 11);
        let mut out = vec![0.0; 4];
        block.sq_distances_to(&[1.0, 2.0], &mut out);
    }
}
