//! Observability benchmark: writes `BENCH_obs.json`, a Chrome trace
//! (`BENCH_obs_trace.json`) loadable in Perfetto / `chrome://tracing`, and —
//! because the run absorbs an injected fault storm — a post-mortem
//! diagnostic bundle (`BENCH_obs_bundle.json`).
//!
//! Runs one instrumented `VeFull` session on the async engine under a
//! deterministic fault plan (transient training failures that force retries,
//! plus a low rate of permanent row-inference faults that degrade served
//! predictions) and exports what the two `ve-obs` planes saw:
//!
//! * **event plane** — deterministic event counts per kind (these are a pure
//!   function of the config, so diffs in this section of the artifact are
//!   behavior changes, not noise);
//! * **timing plane** — per-phase wall-clock histograms (p50/p99 in µs) for
//!   the session-thread phases (`select`, `visible`, `think`, `spill`) and
//!   the executor task kinds (`infer`, `train`, `eager`), plus the
//!   executor's queue-wait and depth high-water counters;
//! * **anomaly section** — phase outliers, queue-wait spikes, and retry
//!   storms (`detect_session_anomalies`), which also land in the Chrome
//!   trace as `instant` markers on the track where they happened.
//!
//! The Chrome trace is structurally validated before it is written —
//! per-track monotonic timestamps, balanced `B`/`E` pairs, at least one
//! complete span for every required phase, and at least one anomaly instant
//! — so CI fails loudly instead of committing a trace Perfetto cannot load.
//! Whenever the session recorded any degradation (the fault plan guarantees
//! it), the flight-recorder diagnostic bundle is emitted alongside.
//!
//! ```text
//! cargo run --release -p ve-bench --bin bench_obs [-- --quick]
//! ```

use std::collections::BTreeMap;
use ve_bench::emit::{Artifact, Value};
use ve_obs::{
    annotate_trace, AnomalyConfig, ChromeTrace, EventKind, Histogram, PhaseTiming, TaskTiming,
};
use ve_sched::fault::{FaultPlan, FaultRule, FaultSite};
use vocalexplore::prelude::*;

/// One per-phase row of the artifact: a histogram summarised to the fields
/// worth diffing.
fn histogram_value(h: &Histogram) -> Value {
    Value::obj([
        ("count", Value::u64(h.total())),
        ("p50_us", Value::u64(h.p50())),
        ("p99_us", Value::u64(h.p99())),
        ("min_us", Value::u64(h.min())),
        ("max_us", Value::u64(h.max())),
    ])
}

fn build_trace(timings: &[TaskTiming], phases: &[PhaseTiming]) -> ChromeTrace {
    let mut trace = ChromeTrace::new();
    trace.name_track(0, 0, "session");
    let mut workers: Vec<usize> = timings.iter().map(|t| t.worker).collect();
    workers.sort_unstable();
    workers.dedup();
    for w in workers {
        trace.name_track(0, 1 + w as u64, &format!("worker-{w}"));
    }
    for p in phases {
        trace.add_phase(p);
    }
    for t in timings {
        trace.add_task(t);
    }
    trace
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (scale, iterations, time_scale) = if quick {
        (0.08, 6, 2e-2)
    } else {
        (0.15, 12, 1e-2)
    };
    // The fault storm: training fails its first attempts often enough that
    // some iteration re-runs training twice (a retry storm for the anomaly
    // annotator), but always succeeds within the 3-attempt retry budget; a
    // permanent row-inference rate high enough to exhaust the in-task retry
    // loop (0.7³ ≈ 0.34 per row) degrades some served predictions so the
    // diagnostic-bundle path runs on every benchmark invocation.
    let faults = FaultPlan::new(23)
        .with_rule(FaultSite::Training, FaultRule::transient(0.8, 2))
        .with_rule(FaultSite::RowInference, FaultRule::permanent(0.7));
    let mut cfg = SessionConfig::new(DatasetName::Deer, scale, 42)
        .with_iterations(iterations)
        .with_eval_every(10_000);
    cfg.system = cfg
        .system
        .with_strategy(SchedulerStrategy::VeFull)
        .with_feature_selection(FeatureSelectionPolicy::Fixed(ExtractorId::R3d))
        // Pin an index-backed acquisition so the artifact exercises the
        // acquisition-index ingest and probability-cache instrumentation.
        .with_sampling(SamplingPolicy::Fixed(AcquisitionKind::Coreset))
        .with_extra_candidates(5)
        .with_time_scale(time_scale)
        .with_fault_plan(faults);
    cfg.system.t_user = 4.0;
    cfg.system.train.epochs = 40;
    assert!(cfg.system.observability, "observability defaults on");

    let outcome = AsyncSessionRunner::new(cfg).run();
    assert_eq!(outcome.executor.pending(), 0, "executor failed to drain");
    assert!(
        !outcome.events.is_empty() && !outcome.timings.is_empty() && !outcome.phases.is_empty(),
        "both planes must have recorded"
    );

    // Event plane: deterministic counts per kind.
    let mut event_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (_, e) in &outcome.events {
        *event_counts.entry(e.kind()).or_insert(0) += 1;
    }

    // Timing plane: per-phase histograms. Session-thread phases observe
    // their duration; executor tasks observe run time, and queue wait goes
    // into one shared histogram (it measures scheduler pressure, not the
    // task itself).
    let mut hists: BTreeMap<String, Histogram> = BTreeMap::new();
    let mut observe = |name: &str, v: u64| {
        hists
            .entry(name.to_string())
            .or_insert_with(Histogram::with_default_bounds)
            .observe(v);
    };
    for p in &outcome.phases {
        observe(p.phase, p.dur_us);
    }
    for t in &outcome.timings {
        observe(t.label.kind, t.run_us());
        observe("queue_wait", t.queue_wait_us());
    }

    // Anomaly section: the fault plan makes at least a retry storm certain.
    let anomaly_cfg = AnomalyConfig::default();
    let anomalies = detect_session_anomalies(&outcome, &anomaly_cfg);
    assert!(
        !anomalies.is_empty(),
        "the injected fault storm must surface at least one anomaly"
    );
    let mut anomaly_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for a in &anomalies {
        *anomaly_counts.entry(a.kind.label()).or_insert(0) += 1;
    }

    // Chrome trace with anomaly instants, validated before it is written.
    let mut trace = build_trace(&outcome.timings, &outcome.phases);
    annotate_trace(&mut trace, &anomalies);
    let required = [
        "select", "visible", "think", "spill", "infer", "train", "eager",
    ];
    let stats = trace
        .validate(&required)
        .expect("trace must be structurally valid");
    assert!(
        stats.instants >= 1,
        "annotated trace must carry the anomaly instants"
    );
    eprintln!(
        "bench_obs: {} events, {} tasks, {} phase spans, {} degradations, {} anomalies; \
         trace has {} spans + {} instants on {} tracks",
        outcome.events.len(),
        outcome.timings.len(),
        outcome.phases.len(),
        outcome.degradations.len(),
        anomalies.len(),
        stats.spans,
        stats.instants,
        stats.tracks
    );

    Artifact::new("vocalexplore/bench_obs/v1", quick)
        .field("strategy", Value::str("ve_full"))
        .field("iterations", Value::usize(iterations))
        .field(
            "events",
            Value::obj([
                ("total", Value::usize(outcome.events.len())),
                (
                    "by_kind",
                    Value::obj(event_counts.iter().map(|(k, v)| (*k, Value::u64(*v)))),
                ),
            ]),
        )
        .field(
            "phases",
            Value::obj(hists.iter().map(|(k, h)| (k.clone(), histogram_value(h)))),
        )
        .field(
            "executor",
            Value::obj([
                ("submitted", Value::u64(outcome.executor.submitted)),
                ("retried", Value::u64(outcome.executor.retried)),
                ("queue_wait_us", Value::u64(outcome.executor.queue_wait_us)),
                (
                    "depth_hwm",
                    Value::Arr(
                        outcome
                            .executor
                            .depth_hwm
                            .iter()
                            .map(|&d| Value::u64(d))
                            .collect(),
                    ),
                ),
            ]),
        )
        .field("degradations", Value::usize(outcome.degradations.len()))
        .field(
            "anomalies",
            Value::obj(anomaly_counts.iter().map(|(k, v)| (*k, Value::u64(*v)))),
        )
        .field(
            "trace",
            Value::obj([
                ("tracks", Value::usize(stats.tracks)),
                ("spans", Value::usize(stats.spans)),
                ("instants", Value::usize(stats.instants)),
            ]),
        )
        .write("BENCH_obs.json");
    std::fs::write("BENCH_obs_trace.json", trace.render_json())
        .expect("write BENCH_obs_trace.json");

    // Post-mortem path: any degradation triggers the flight-recorder dump.
    if !outcome.degradations.is_empty() {
        let bundle = DiagnosticBundle::from_outcome(&outcome, 64, &anomaly_cfg);
        std::fs::write("BENCH_obs_bundle.json", bundle.render_json())
            .expect("write BENCH_obs_bundle.json");
        eprintln!(
            "bench_obs: wrote BENCH_obs_bundle.json ({} degradations, last {} events)",
            outcome.degradations.len(),
            bundle.last_events.len()
        );
    }
}
