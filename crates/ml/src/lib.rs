//! `ve-ml` — the model substrate for VOCALExplore.
//!
//! The paper's Model Manager trains *linear models* on top of pretrained
//! feature vectors (Section 3.2: "training a linear model on pretrained
//! features is an accepted technique for training domain-specific models").
//! This crate provides everything that substrate needs:
//!
//! * a small dense-matrix module ([`tensor`]) sized for the 10²–10³ × 10²
//!   problems the ALM trains at each iteration,
//! * multinomial logistic regression ([`linear::SoftmaxModel`]) for
//!   single-label datasets (Deer, K20, K20-skew, Bears) and one-vs-rest
//!   logistic regression ([`linear::OneVsRestModel`]) for multi-label
//!   datasets (Charades verbs, BDD objects),
//! * evaluation metrics ([`metrics`]) — macro F1 is the paper's primary
//!   quality metric,
//! * stratified k-fold cross-validation ([`crossval`]) used by the rising
//!   bandit to estimate feature quality when no validation set exists, and
//! * exponential weighted moving-average smoothing ([`ewma`]) used to smooth
//!   noisy per-step model quality (Section 3.2.4).

pub mod block;
pub mod crossval;
pub mod ewma;
pub mod linear;
pub mod metrics;
pub mod scaler;
pub mod tensor;

pub use block::{
    argmax_chunked, argmax_chunked_filtered, dot_fast, sq_norm, FeatureBlock, FeatureBlockBuilder,
};
pub use crossval::{cross_validate, stratified_k_fold, CrossValConfig, FoldAssignment};
pub use ewma::Ewma;
pub use linear::{Classifier, LabelKind, OneVsRestModel, SoftmaxModel, TrainConfig, TrainedModel};
pub use metrics::{
    accuracy, confusion_matrix, macro_f1, macro_f1_multilabel, per_class_f1, ClassificationReport,
};
pub use scaler::{ScalerMoments, StandardScaler};
pub use tensor::Matrix;
