//! CLI for the `ve-lint` gate. Exit status 0 = clean; 1 = findings or a
//! stale baseline; 2 = usage/environment error.

use std::path::PathBuf;
use std::process::ExitCode;

use ve_lint::{
    analyze, find_workspace_root, load_workspace, parse_baseline, render_baseline,
    unsuppressed_findings, RULE_MALFORMED_SUPPRESSION,
};

const USAGE: &str = "\
ve-lint: determinism & concurrency static-analysis gate

USAGE:
    ve-lint [--root PATH] [--baseline PATH] [--json] [--write-baseline]

OPTIONS:
    --root PATH        workspace root (default: walk up from cwd to [workspace])
    --baseline PATH    baseline file (default: <root>/ve-lint.baseline)
    --json             machine-readable report on stdout
    --write-baseline   regenerate the baseline from current unsuppressed
                       findings (malformed suppressions are never baselined)
    --help             this text
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut json = false;
    let mut write_baseline = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--write-baseline" => write_baseline = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage_error("--baseline needs a path"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "ve-lint: no [workspace] Cargo.toml found above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("ve-lint.baseline"));

    let ws = match load_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("ve-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        let findings: Vec<_> = unsuppressed_findings(&ws)
            .into_iter()
            // A broken annotation must be fixed, not grandfathered.
            .filter(|f| f.rule != RULE_MALFORMED_SUPPRESSION)
            .collect();
        let text = render_baseline(&findings);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("ve-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "ve-lint: wrote {} entr{} to {}",
            findings.len(),
            if findings.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if baseline_path.is_file() {
        match std::fs::read_to_string(&baseline_path).map_err(|e| e.to_string()) {
            Ok(text) => match parse_baseline(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("ve-lint: {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("ve-lint: cannot read {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Vec::new()
    };

    let report = analyze(&ws, &baseline);
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("ve-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
