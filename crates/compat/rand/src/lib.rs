//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so this tiny
//! crate provides the subset of the `rand 0.8` API the workspace actually
//! uses: [`rngs::StdRng`] (a xoshiro256++ generator), [`SeedableRng`],
//! [`Rng::gen`] / [`Rng::gen_range`], and [`seq::SliceRandom::shuffle`].
//! Sequences differ from upstream `rand`, but every consumer in this
//! workspace only relies on determinism-for-a-seed and statistical quality,
//! not on exact upstream streams.

/// A generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a generator ("standard"
/// distribution: floats in `[0, 1)`, integers over their full range).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a generator can sample uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is negligible
                // for the span sizes used here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<f32> {
    type Output = f32;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::draw(rng) * (self.end - self.start)
    }
}

/// The random-generator trait: raw 64-bit output plus typed helpers.
pub trait Rng {
    /// The next 64 raw bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Draws one value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice helpers.

    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// The slice element type.
        type Item;
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample(rng)])
            }
        }
    }

    use super::SampleRange;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
        for _ in 0..1_000 {
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn mean_of_uniform_near_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }
}
