//! Scheduling strategies and their per-iteration visible-latency accounting.
//!
//! Section 4 derives the user-visible latency of one `Explore` iteration for
//! each strategy (with `B` segments per batch, `X` extra feature extractions
//! when active learning needs a candidate pool, and `k` features still under
//! evaluation):
//!
//! | strategy     | random sampling                  | active learning                        |
//! |--------------|----------------------------------|----------------------------------------|
//! | Serial       | `B(Ts + Tf + Ti) + Tm + k·Te`    | `(B+X)·Tf + B(Ts + Ti) + Tm + k·Te`    |
//! | `VE-partial` | `B(Ts + Tf + Ti)`                | `(B+X)·Tf + B(Ts + Ti)`                |
//! | `VE-full`    | `B(Ts + Ti)`                     | `B(Ts + Ti)`                           |
//!
//! `VE-partial` makes training and feature evaluation asynchronous;
//! `VE-full` additionally hides feature extraction behind eager background
//! extraction, so only sample selection and inference remain visible.

/// The scheduling strategies evaluated in the paper, plus the speculative
/// extension the paper sketches but does not implement (Section 4: visible
/// latency "could be reduced further with speculative execution (i.e.,
/// prepare `T_s` and `T_i` before the next call to Explore)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerStrategy {
    /// Everything runs synchronously inside the API call.
    Serial,
    /// Model training and feature evaluation are asynchronous.
    VePartial,
    /// `VE-partial` plus eager background feature extraction.
    VeFull,
    /// `VE-full` plus speculative pre-computation of the next batch's sample
    /// selection and inference during the current labeling window, driving
    /// visible latency to (near) zero. Implemented as the paper's suggested
    /// future-work extension.
    VeFullSpeculative,
}

impl SchedulerStrategy {
    /// The three strategies the paper evaluates, in increasing order of
    /// optimization.
    pub fn all() -> [SchedulerStrategy; 3] {
        [
            SchedulerStrategy::Serial,
            SchedulerStrategy::VePartial,
            SchedulerStrategy::VeFull,
        ]
    }

    /// Every strategy including the speculative extension.
    pub fn all_with_extensions() -> [SchedulerStrategy; 4] {
        [
            SchedulerStrategy::Serial,
            SchedulerStrategy::VePartial,
            SchedulerStrategy::VeFull,
            SchedulerStrategy::VeFullSpeculative,
        ]
    }

    /// Display name used in experiment output.
    pub fn as_str(&self) -> &'static str {
        match self {
            SchedulerStrategy::Serial => "Serial",
            SchedulerStrategy::VePartial => "VE-partial",
            SchedulerStrategy::VeFull => "VE-full",
            SchedulerStrategy::VeFullSpeculative => "VE-full (spec.)",
        }
    }
}

impl std::fmt::Display for SchedulerStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-task costs for one iteration (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationCosts {
    /// Batch size `B` (segments labeled per iteration).
    pub batch_size: usize,
    /// Sample-selection cost per segment (`T_s`).
    pub t_select: f64,
    /// Feature-extraction cost per *video that still needs features* (`T_f`).
    pub t_extract: f64,
    /// Number of sampled videos whose features are not yet extracted; under
    /// `VE-full` this is zero because eager extraction already covered them.
    pub videos_needing_extraction: usize,
    /// Extra videos `X` that must be processed before active learning can
    /// choose a batch (zero under random sampling and under `VE-full`).
    pub extra_candidates: usize,
    /// Inference cost per segment (`T_i`).
    pub t_infer: f64,
    /// Model-training cost (`T_m`).
    pub t_train: f64,
    /// Feature-evaluation cost per candidate feature (`T_e`).
    pub t_eval: f64,
    /// Number of candidate features still being evaluated (`k`).
    pub features_under_evaluation: usize,
    /// Seconds the user spends labeling each segment (`T_user`).
    pub t_user: f64,
}

impl IterationCosts {
    /// Convenience constructor with the paper's defaults (`B = 5`,
    /// `T_user = 10 s`) and everything else zeroed.
    pub fn with_defaults() -> Self {
        Self {
            batch_size: 5,
            t_select: 0.0,
            t_extract: 0.0,
            videos_needing_extraction: 0,
            extra_candidates: 0,
            t_infer: 0.0,
            t_train: 0.0,
            t_eval: 0.0,
            features_under_evaluation: 0,
            t_user: 10.0,
        }
    }
}

/// The latency breakdown of one iteration under a given strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationLatency {
    /// Latency the user perceives before the batch is shown
    /// (`T_visible = T_total − B·T_user`).
    pub visible_secs: f64,
    /// Work executed in the background during labeling time.
    pub background_secs: f64,
    /// Labeling time (`B · T_user`).
    pub labeling_secs: f64,
}

impl IterationLatency {
    /// Total elapsed time of the iteration.
    pub fn total_secs(&self) -> f64 {
        self.visible_secs + self.labeling_secs
    }

    /// Whether the background work fits inside the labeling window (if not,
    /// the surplus spills into later iterations rather than into visible
    /// latency, because background tasks never block the API).
    pub fn background_fits(&self) -> bool {
        self.background_secs <= self.labeling_secs
    }
}

/// Computes the visible/background latency split of one iteration.
pub fn iteration_latency(strategy: SchedulerStrategy, costs: &IterationCosts) -> IterationLatency {
    let b = costs.batch_size as f64;
    let k = costs.features_under_evaluation as f64;
    let select_and_infer = b * (costs.t_select + costs.t_infer);
    let extraction =
        (costs.videos_needing_extraction + costs.extra_candidates) as f64 * costs.t_extract;
    let train_and_eval = costs.t_train + k * costs.t_eval;

    let (visible, background) = match strategy {
        SchedulerStrategy::Serial => (select_and_infer + extraction + train_and_eval, 0.0),
        SchedulerStrategy::VePartial => (select_and_infer + extraction, train_and_eval),
        SchedulerStrategy::VeFull => {
            // Feature extraction for the sampled (and candidate) videos has
            // already happened eagerly in the background; what remains
            // visible is selection + inference. The extraction work itself is
            // accounted as background.
            (select_and_infer, extraction + train_and_eval)
        }
        SchedulerStrategy::VeFullSpeculative => {
            // Selection and inference for the next batch were precomputed
            // during the previous labeling window, so nothing is visible;
            // all work (including the speculative Ts/Ti) is background.
            (0.0, select_and_infer + extraction + train_and_eval)
        }
    };
    IterationLatency {
        visible_secs: visible,
        background_secs: background,
        labeling_secs: b * costs.t_user,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs(extraction_videos: usize, extra: usize) -> IterationCosts {
        IterationCosts {
            batch_size: 5,
            t_select: 0.01,
            t_extract: 0.3,
            videos_needing_extraction: extraction_videos,
            extra_candidates: extra,
            t_infer: 0.02,
            t_train: 2.0,
            t_eval: 1.0,
            features_under_evaluation: 5,
            t_user: 10.0,
        }
    }

    #[test]
    fn serial_matches_paper_formula_random() {
        // T_serial(random) = B(Ts + Tf + Ti) + Tm + k·Te with one extraction
        // per sampled video.
        let c = costs(5, 0);
        let lat = iteration_latency(SchedulerStrategy::Serial, &c);
        let expected = 5.0 * (0.01 + 0.02) + 5.0 * 0.3 + 2.0 + 5.0 * 1.0;
        assert!((lat.visible_secs - expected).abs() < 1e-9);
        assert_eq!(lat.background_secs, 0.0);
        assert_eq!(lat.labeling_secs, 50.0);
    }

    #[test]
    fn serial_matches_paper_formula_active() {
        // T_serial(active) = (B+X)Tf + B(Ts + Ti) + Tm + k·Te.
        let c = costs(5, 50);
        let lat = iteration_latency(SchedulerStrategy::Serial, &c);
        let expected = 55.0 * 0.3 + 5.0 * (0.01 + 0.02) + 2.0 + 5.0;
        assert!((lat.visible_secs - expected).abs() < 1e-9);
    }

    #[test]
    fn ve_partial_hides_training_and_evaluation() {
        let c = costs(5, 0);
        let lat = iteration_latency(SchedulerStrategy::VePartial, &c);
        let expected_visible = 5.0 * (0.01 + 0.02) + 5.0 * 0.3;
        assert!((lat.visible_secs - expected_visible).abs() < 1e-9);
        assert!((lat.background_secs - 7.0).abs() < 1e-9);
    }

    #[test]
    fn ve_full_visible_latency_is_select_plus_infer_only() {
        let c = costs(5, 50);
        let lat = iteration_latency(SchedulerStrategy::VeFull, &c);
        let expected_visible = 5.0 * (0.01 + 0.02);
        assert!((lat.visible_secs - expected_visible).abs() < 1e-9);
        // The extraction and training work did not disappear; it moved to the
        // background.
        assert!(lat.background_secs > 10.0);
    }

    #[test]
    fn strategies_are_strictly_ordered_by_visible_latency() {
        let c = costs(5, 10);
        let serial = iteration_latency(SchedulerStrategy::Serial, &c).visible_secs;
        let partial = iteration_latency(SchedulerStrategy::VePartial, &c).visible_secs;
        let full = iteration_latency(SchedulerStrategy::VeFull, &c).visible_secs;
        assert!(serial > partial && partial > full);
    }

    #[test]
    fn ve_full_visible_latency_is_about_one_second_with_paper_costs() {
        // With B = 5, per-segment selection+inference of ~0.2 s, VE-full's
        // visible latency lands near the ~1 s/iteration the paper reports.
        let c = IterationCosts {
            batch_size: 5,
            t_select: 0.05,
            t_infer: 0.15,
            ..IterationCosts::with_defaults()
        };
        let lat = iteration_latency(SchedulerStrategy::VeFull, &c);
        assert!((lat.visible_secs - 1.0).abs() < 0.2, "{}", lat.visible_secs);
    }

    #[test]
    fn background_fit_check() {
        let mut c = costs(5, 0);
        c.t_train = 100.0;
        let lat = iteration_latency(SchedulerStrategy::VePartial, &c);
        assert!(!lat.background_fits());
        c.t_train = 2.0;
        let lat = iteration_latency(SchedulerStrategy::VePartial, &c);
        assert!(lat.background_fits());
        assert!((lat.total_secs() - (lat.visible_secs + 50.0)).abs() < 1e-9);
    }

    #[test]
    fn display_names() {
        assert_eq!(SchedulerStrategy::VeFull.to_string(), "VE-full");
        assert_eq!(SchedulerStrategy::all().len(), 3);
        assert_eq!(SchedulerStrategy::all_with_extensions().len(), 4);
    }

    #[test]
    fn speculative_extension_has_zero_visible_latency() {
        let c = costs(5, 10);
        let lat = iteration_latency(SchedulerStrategy::VeFullSpeculative, &c);
        assert_eq!(lat.visible_secs, 0.0);
        // The work does not disappear; it all becomes background.
        let full = iteration_latency(SchedulerStrategy::VeFull, &c);
        assert!(lat.background_secs >= full.background_secs);
    }
}
