//! `ve-al` — acquisition functions and the `VE-sample` selection policy.
//!
//! The Active Learning Manager must decide, at every `Explore` call, which
//! video segments the user should label next (Section 3.1). This crate
//! implements the candidate acquisition functions the paper evaluates:
//!
//! * [`random_selection`] — uniform sampling over unlabeled candidates; the
//!   cheap baseline that needs no features at all,
//! * [`coreset_selection`] — the greedy k-center Coreset algorithm
//!   (Sener & Savarese 2018), a density/diversity-based function,
//! * [`cluster_margin_selection`] — Cluster-Margin (Citovsky et al. 2021),
//!   combining margin-based uncertainty with cluster-based diversity; the
//!   prototype's default active-learning function,
//! * [`uncertainty_selection`] — the rare-category sampler of Mullapudi et
//!   al. 2021 used for `Explore(label=a)` calls: most-confident positives
//!   while the class is rare, most-uncertain once it is common,
//!
//! and the policy that picks among them:
//!
//! * [`VeSample`] — starts with Random, watches the label histogram with a
//!   skew detector (Anderson–Darling or the Appendix-A frequency test), and
//!   latches onto the configured active-learning function once skew is
//!   detected.

pub mod cluster_margin;
pub mod coreset;
pub mod hac;
pub mod random;
pub mod sketch;
pub mod uncertainty;
pub mod ve_sample;

pub use cluster_margin::{cluster_margin_selection, kmeans_fit, ClusterMarginConfig};
pub use coreset::{coreset_selection, greedy_k_center};
pub use hac::{cluster_margin_selection_hac, hac_average_linkage, hac_average_linkage_dense};
pub use random::random_selection;
pub use sketch::{ClusterSketch, ClusterSketchConfig};
pub use uncertainty::{uncertainty_selection, uncertainty_selection_from_probs};
pub use ve_sample::{AcquisitionKind, VeSample, VeSampleConfig};
