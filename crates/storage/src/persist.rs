//! Snapshot format for the storage manager.
//!
//! Layout (all little-endian, see [`crate::codec`]):
//!
//! ```text
//! magic "VESM" | version u8
//! u32 n_videos   | n_videos  × { vid u64, path str, duration f64, ts f64 }
//! u32 n_labels   | n_labels  × { vid u64, start f64, end f64, classes u64[], iteration u32 }
//! u32 n_features | n_features× { extractor u8, vid u64,
//!                                u32 n_vectors × { start f64, end f64, data f32[] } }
//! ```

#![allow(clippy::disallowed_types)] // HashMap by design: order-exposing uses are policed by ve-lint nondeterministic-iteration

use crate::codec::{Reader, Writer};
use crate::error::StorageError;
use crate::feature_store::FeatureStore;
use crate::labels::{LabelRecord, LabelStore};
use crate::metadata::{VideoMetadataStore, VideoRecord};
use ve_features::{ExtractorId, FeatureVector};
use ve_vidsim::{TimeRange, VideoId};

const MAGIC: &[u8; 4] = b"VESM";
const VERSION: u8 = 1;

/// Encodes the three stores into a snapshot buffer.
pub fn encode_snapshot(
    metadata: &VideoMetadataStore,
    labels: &LabelStore,
    features: &FeatureStore,
) -> Vec<u8> {
    let mut w = Writer::with_capacity(1024);
    for &b in MAGIC {
        w.put_u8(b);
    }
    w.put_u8(VERSION);

    // Videos.
    w.put_u32(metadata.len() as u32);
    for rec in metadata.iter() {
        w.put_u64(rec.vid.0);
        w.put_str(&rec.path);
        w.put_f64(rec.duration);
        w.put_f64(rec.start_timestamp);
    }

    // Labels.
    w.put_u32(labels.len() as u32);
    for rec in labels.records() {
        w.put_u64(rec.vid.0);
        w.put_f64(rec.range.start);
        w.put_f64(rec.range.end);
        let classes: Vec<u64> = rec.classes.iter().map(|&c| c as u64).collect();
        w.put_u64_slice(&classes);
        w.put_u32(rec.iteration);
    }

    // Features.
    let entries: Vec<_> = features.iter().collect();
    w.put_u32(entries.len() as u32);
    for ((extractor, vid), entry) in entries {
        w.put_u8(extractor.index() as u8);
        w.put_u64(vid.0);
        w.put_u32(entry.len() as u32);
        for i in 0..entry.len() {
            let range = entry.range(i);
            w.put_f64(range.start);
            w.put_f64(range.end);
            w.put_f32_slice(entry.row(i));
        }
    }
    w.into_bytes()
}

/// Fault-aware variant of [`decode_snapshot`]: consults the injector's
/// `SnapshotDecode` site (keyed by the buffer length) before decoding, so
/// chaos tests can exercise the snapshot-corruption recovery path
/// deterministically.
pub fn decode_snapshot_with_fault(
    bytes: &[u8],
    fault: Option<&ve_sched::fault::FaultInjector>,
) -> Result<(VideoMetadataStore, LabelStore, FeatureStore), StorageError> {
    if let Some(inj) = fault {
        if inj.should_fail(
            ve_sched::fault::FaultSite::SnapshotDecode,
            bytes.len() as u64,
            0,
        ) {
            return Err(StorageError::Corrupt(
                "injected snapshot-decode fault".into(),
            ));
        }
    }
    decode_snapshot(bytes)
}

/// Decodes a snapshot buffer back into the three stores.
pub fn decode_snapshot(
    bytes: &[u8],
) -> Result<(VideoMetadataStore, LabelStore, FeatureStore), StorageError> {
    let mut r = Reader::new(bytes);
    let mut magic = [0u8; 4];
    for b in &mut magic {
        *b = r.get_u8()?;
    }
    if &magic != MAGIC {
        return Err(StorageError::Corrupt("bad magic".into()));
    }
    let version = r.get_u8()?;
    if version != VERSION {
        return Err(StorageError::Corrupt(format!(
            "unsupported snapshot version {version}"
        )));
    }

    let mut metadata = VideoMetadataStore::new();
    let n_videos = r.get_u32()?;
    for _ in 0..n_videos {
        let vid = VideoId(r.get_u64()?);
        let path = r.get_str()?;
        let duration = r.get_f64()?;
        let start_timestamp = r.get_f64()?;
        metadata.insert(VideoRecord {
            vid,
            path,
            duration,
            start_timestamp,
        });
    }

    let mut labels = LabelStore::new();
    let n_labels = r.get_u32()?;
    for _ in 0..n_labels {
        let vid = VideoId(r.get_u64()?);
        let start = r.get_f64()?;
        let end = r.get_f64()?;
        if !start.is_finite() || !end.is_finite() || start > end {
            return Err(StorageError::Corrupt(format!(
                "invalid label range [{start}, {end})"
            )));
        }
        let classes: Vec<usize> = r.get_u64_vec()?.into_iter().map(|c| c as usize).collect();
        let iteration = r.get_u32()?;
        labels.add(LabelRecord {
            vid,
            range: TimeRange::new(start, end),
            classes,
            iteration,
        });
    }

    let mut features = FeatureStore::new();
    let n_entries = r.get_u32()?;
    for _ in 0..n_entries {
        let eidx = r.get_u8()? as usize;
        if eidx >= ve_features::EXTRACTOR_COUNT {
            return Err(StorageError::Corrupt(format!(
                "unknown extractor index {eidx}"
            )));
        }
        let extractor = ExtractorId::from_index(eidx);
        let vid = VideoId(r.get_u64()?);
        let n_vectors = r.get_u32()?;
        let mut vectors = Vec::with_capacity(n_vectors as usize);
        for _ in 0..n_vectors {
            let start = r.get_f64()?;
            let end = r.get_f64()?;
            if !start.is_finite() || !end.is_finite() || start > end {
                return Err(StorageError::Corrupt(format!(
                    "invalid feature range [{start}, {end})"
                )));
            }
            let data = r.get_f32_vec()?;
            vectors.push(FeatureVector {
                extractor,
                vid,
                range: TimeRange::new(start, end),
                data,
            });
        }
        features.put(extractor, vid, vectors);
    }

    Ok((metadata, labels, features))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stores() -> (VideoMetadataStore, LabelStore, FeatureStore) {
        let mut metadata = VideoMetadataStore::new();
        for i in 0..5u64 {
            metadata.insert(VideoRecord {
                vid: VideoId(i),
                path: format!("clips/{i}.mp4"),
                duration: 10.0 + i as f64,
                start_timestamp: i as f64 * 60.0,
            });
        }
        let mut labels = LabelStore::new();
        labels.add(LabelRecord {
            vid: VideoId(0),
            range: TimeRange::new(0.0, 1.0),
            classes: vec![1, 3],
            iteration: 2,
        });
        labels.add(LabelRecord {
            vid: VideoId(3),
            range: TimeRange::new(4.0, 5.0),
            classes: vec![],
            iteration: 7,
        });
        let mut features = FeatureStore::new();
        features.put(
            ExtractorId::Mvit,
            VideoId(0),
            vec![FeatureVector {
                extractor: ExtractorId::Mvit,
                vid: VideoId(0),
                range: TimeRange::new(0.0, 1.0),
                data: vec![1.0, 2.0, 3.0],
            }],
        );
        (metadata, labels, features)
    }

    /// Snapshot bytes must be a pure function of store *state*, independent
    /// of the order entries were inserted (regression: `FeatureStore::iter`
    /// used to expose raw `HashMap` order, so identical stores produced
    /// different snapshot files from run to run).
    #[test]
    fn snapshot_bytes_independent_of_insertion_order() {
        let (metadata, labels, _) = sample_stores();
        let vector = |e: ExtractorId, v: u64| {
            vec![FeatureVector {
                extractor: e,
                vid: VideoId(v),
                range: TimeRange::new(0.0, 1.0),
                data: vec![v as f32, 2.0],
            }]
        };
        let keys = [
            (ExtractorId::Mvit, 3u64),
            (ExtractorId::R3d, 1),
            (ExtractorId::Clip, 2),
            (ExtractorId::R3d, 0),
        ];
        let mut forward = FeatureStore::new();
        for &(e, v) in &keys {
            forward.put(e, VideoId(v), vector(e, v));
        }
        let mut reverse = FeatureStore::new();
        for &(e, v) in keys.iter().rev() {
            reverse.put(e, VideoId(v), vector(e, v));
        }
        let sorted: Vec<_> = forward.iter().map(|(k, _)| *k).collect();
        let mut expected = sorted.clone();
        expected.sort();
        assert_eq!(sorted, expected, "FeatureStore::iter must be key-sorted");
        assert_eq!(
            encode_snapshot(&metadata, &labels, &forward),
            encode_snapshot(&metadata, &labels, &reverse),
            "snapshot bytes must not depend on insertion order"
        );
    }

    #[test]
    fn encode_decode_round_trip() {
        let (m, l, f) = sample_stores();
        let bytes = encode_snapshot(&m, &l, &f);
        let (m2, l2, f2) = decode_snapshot(&bytes).unwrap();
        assert_eq!(m2.len(), 5);
        assert_eq!(m2.get(VideoId(3)).unwrap().duration, 13.0);
        assert_eq!(l2.len(), 2);
        assert_eq!(l2.records()[0].classes, vec![1, 3]);
        assert_eq!(l2.records()[1].classes, Vec::<usize>::new());
        assert_eq!(
            f2.get(ExtractorId::Mvit, VideoId(0)).unwrap().row(0),
            &[1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let (m, l, f) = sample_stores();
        let mut bytes = encode_snapshot(&m, &l, &f);
        bytes[0] = b'X';
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn unsupported_version_rejected() {
        let (m, l, f) = sample_stores();
        let mut bytes = encode_snapshot(&m, &l, &f);
        bytes[4] = 99;
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let (m, l, f) = sample_stores();
        let bytes = encode_snapshot(&m, &l, &f);
        let truncated = &bytes[..bytes.len() / 2];
        assert!(decode_snapshot(truncated).is_err());
    }

    #[test]
    fn empty_stores_round_trip() {
        let bytes = encode_snapshot(
            &VideoMetadataStore::new(),
            &LabelStore::new(),
            &FeatureStore::new(),
        );
        let (m, l, f) = decode_snapshot(&bytes).unwrap();
        assert!(m.is_empty() && l.is_empty() && f.is_empty());
    }

    #[test]
    fn injected_snapshot_decode_fault_surfaces_as_corrupt() {
        use ve_sched::fault::{FaultInjector, FaultPlan, FaultRule, FaultSite};
        let (metadata, labels, features) = sample_stores();
        let bytes = encode_snapshot(&metadata, &labels, &features);
        // No injector (or an uncovered site): decode succeeds.
        assert!(decode_snapshot_with_fault(&bytes, None).is_ok());
        let benign = FaultInjector::new(FaultPlan::new(4));
        assert!(decode_snapshot_with_fault(&bytes, Some(&benign)).is_ok());
        // Covered site at probability 1: deterministic Corrupt error.
        let inj = FaultInjector::new(
            FaultPlan::new(4).with_rule(FaultSite::SnapshotDecode, FaultRule::permanent(1.0)),
        );
        let err = decode_snapshot_with_fault(&bytes, Some(&inj)).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "got {err}");
        assert_eq!(inj.injected_at(FaultSite::SnapshotDecode), 1);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn decode_never_panics_on_mutated_snapshots(
                flip in proptest::collection::vec((0usize..2000, any::<u8>()), 1..8)
            ) {
                let (m, l, f) = sample_stores();
                let mut bytes = encode_snapshot(&m, &l, &f);
                for (pos, val) in flip {
                    if !bytes.is_empty() {
                        let idx = pos % bytes.len();
                        bytes[idx] = val;
                    }
                }
                // Must return Ok or Err without panicking or aborting.
                let _ = decode_snapshot(&bytes);
            }

            #[test]
            fn label_round_trip_arbitrary(
                vid in 0u64..1000,
                start in 0.0f64..100.0,
                len in 0.1f64..10.0,
                classes in proptest::collection::vec(0usize..50, 0..5),
                iteration in 0u32..500,
            ) {
                let mut labels = LabelStore::new();
                labels.add(LabelRecord {
                    vid: VideoId(vid),
                    range: TimeRange::new(start, start + len),
                    classes: classes.clone(),
                    iteration,
                });
                let bytes = encode_snapshot(&VideoMetadataStore::new(), &labels, &FeatureStore::new());
                let (_, l2, _) = decode_snapshot(&bytes).unwrap();
                prop_assert_eq!(l2.records()[0].classes.clone(), classes);
                prop_assert_eq!(l2.records()[0].iteration, iteration);
            }
        }
    }
}
