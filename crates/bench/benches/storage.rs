//! Microbenchmarks for the storage manager: label ingestion, per-class count
//! queries (run after every batch by `VE-sample`), and snapshot round-trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ve_storage::{LabelRecord, LabelStore, StorageManager, VideoRecord};
use ve_vidsim::{TimeRange, VideoId};

fn filled_label_store(n: usize) -> LabelStore {
    let mut store = LabelStore::new();
    for i in 0..n {
        store.add(LabelRecord {
            vid: VideoId((i / 10) as u64),
            range: TimeRange::new((i % 10) as f64, (i % 10) as f64 + 1.0),
            classes: vec![i % 9],
            iteration: (i / 5) as u32,
        });
    }
    store
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");

    for &n in &[100usize, 1000] {
        group.bench_with_input(BenchmarkId::new("label_ingest", n), &n, |b, &n| {
            b.iter(|| black_box(filled_label_store(n)))
        });
        let store = filled_label_store(n);
        group.bench_with_input(BenchmarkId::new("class_counts", n), &n, |b, _| {
            b.iter(|| black_box(store.class_counts(9)))
        });
    }

    // Snapshot round-trip with metadata + labels.
    let sm = StorageManager::new();
    sm.with_metadata_mut(|m| {
        for i in 0..500u64 {
            m.insert(VideoRecord {
                vid: VideoId(i),
                path: format!("videos/{i}.mp4"),
                duration: 10.0,
                start_timestamp: i as f64,
            });
        }
    });
    sm.with_labels_mut(|l| {
        for r in filled_label_store(500).records() {
            l.add(r.clone());
        }
    });
    group.bench_function("snapshot_encode", |b| b.iter(|| black_box(sm.snapshot())));
    let bytes = sm.snapshot();
    group.bench_function("snapshot_decode", |b| {
        b.iter(|| black_box(StorageManager::from_snapshot(&bytes).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
