//! Linear classifiers: multinomial logistic regression (softmax) and
//! one-vs-rest binary logistic regression.
//!
//! These are the domain-specific models VOCALExplore's Model Manager trains on
//! top of pretrained feature vectors. The paper's prototype trains "linear
//! models" (Section 3.1 problem statement and Section 5 implementation
//! details); single-label tasks (Deer activities, K20, Bears) use a softmax
//! model while multi-label tasks (Charades verbs, BDD objects) use one
//! binary head per class.

use crate::tensor::{dot, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Whether the classification task is single-label or multi-label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelKind {
    /// Exactly one class per example (softmax).
    SingleLabel,
    /// Zero or more classes per example (independent sigmoid per class).
    MultiLabel,
}

/// Training hyperparameters for the linear models.
///
/// The defaults are tuned for the small training sets the ALM sees during
/// exploration (tens to a few hundred labeled clips): full-batch-ish SGD with
/// a moderate learning rate, light L2, and early stopping on the training
/// loss plateau.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Maximum number of passes over the training data.
    pub epochs: usize,
    /// Learning rate for SGD.
    pub learning_rate: f32,
    /// L2 regularization strength (applied to weights, not the bias).
    pub l2: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed for mini-batch shuffling and weight initialization.
    pub seed: u64,
    /// Stop early when the relative improvement of the epoch loss drops below
    /// this tolerance.
    pub tolerance: f64,
    /// Epoch budget of warm-started fine-tuning passes
    /// ([`SoftmaxModel::fit_warm`] / [`OneVsRestModel::fit_warm`]): starting
    /// from a previous model's weights needs far fewer passes than the
    /// from-scratch budget.
    pub warm_epochs: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 120,
            learning_rate: 0.5,
            l2: 1e-4,
            batch_size: 64,
            seed: 0,
            tolerance: 1e-4,
            warm_epochs: 30,
        }
    }
}

/// A trained classifier that outputs a probability distribution (or a set of
/// independent probabilities for multi-label tasks) over the vocabulary.
pub trait Classifier: Send + Sync {
    /// Per-class probabilities for a single feature vector.
    fn predict_proba(&self, x: &[f32]) -> Vec<f32>;

    /// Number of classes in the vocabulary.
    fn num_classes(&self) -> usize;

    /// Feature dimensionality the model was trained on.
    fn dim(&self) -> usize;

    /// Index of the most probable class.
    fn predict(&self, x: &[f32]) -> usize {
        let probs = self.predict_proba(x);
        argmax(&probs)
    }
}

/// Multinomial logistic regression trained with mini-batch SGD.
#[derive(Debug, Clone)]
pub struct SoftmaxModel {
    /// `num_classes × dim` weight matrix.
    weights: Matrix,
    /// Per-class bias.
    bias: Vec<f32>,
    dim: usize,
    num_classes: usize,
}

impl SoftmaxModel {
    /// Trains a softmax model.
    ///
    /// * `features` — one row per labeled clip.
    /// * `labels` — class index per clip (must be `< num_classes`).
    /// * `num_classes` — size of the vocabulary. The paper initializes the
    ///   model with the full vocabulary even before every class has labels,
    ///   so `num_classes` may exceed the number of distinct observed labels.
    ///
    /// # Panics
    /// Panics if `features` is empty, rows have inconsistent lengths, or a
    /// label is out of range.
    pub fn fit(
        features: &[Vec<f32>],
        labels: &[usize],
        num_classes: usize,
        cfg: &TrainConfig,
    ) -> Self {
        Self::fit_impl(features, labels, num_classes, cfg, cfg.epochs, None)
    }

    /// Fine-tunes `init`'s weights on (typically a small subset of) the
    /// training data for `cfg.warm_epochs` passes instead of training from
    /// zeros for `cfg.epochs` — the Model Manager's warm-start path. With a
    /// zero warm-epoch budget the init model is returned unchanged.
    ///
    /// # Panics
    /// Panics on the same invalid inputs as [`SoftmaxModel::fit`], or when
    /// `init` does not match `num_classes` / the feature dimensionality.
    pub fn fit_warm(
        features: &[Vec<f32>],
        labels: &[usize],
        num_classes: usize,
        cfg: &TrainConfig,
        init: &SoftmaxModel,
    ) -> Self {
        assert_eq!(init.num_classes, num_classes, "init class-count mismatch");
        assert!(!features.is_empty(), "cannot train on an empty set");
        assert_eq!(init.dim, features[0].len(), "init dimension mismatch");
        Self::fit_impl(
            features,
            labels,
            num_classes,
            cfg,
            cfg.warm_epochs,
            Some((init.weights.clone(), init.bias.clone())),
        )
    }

    /// The `num_classes × dim` weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The per-class bias.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    fn fit_impl(
        features: &[Vec<f32>],
        labels: &[usize],
        num_classes: usize,
        cfg: &TrainConfig,
        epochs: usize,
        init: Option<(Matrix, Vec<f32>)>,
    ) -> Self {
        assert!(!features.is_empty(), "cannot train on an empty set");
        assert_eq!(features.len(), labels.len(), "features/labels mismatch");
        assert!(num_classes >= 2, "need at least two classes");
        let dim = features[0].len();
        assert!(
            features.iter().all(|f| f.len() == dim),
            "inconsistent feature dimensions"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );

        let (mut weights, mut bias) =
            init.unwrap_or_else(|| (Matrix::zeros(num_classes, dim), vec![0.0f32; num_classes]));
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = features.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut prev_loss = f64::INFINITY;

        for _epoch in 0..epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                // Accumulate gradients over the mini-batch.
                let mut grad_w = Matrix::zeros(num_classes, dim);
                let mut grad_b = vec![0.0f32; num_classes];
                for &i in chunk {
                    let x = &features[i];
                    let mut logits = weights.matvec(x);
                    for (l, b) in logits.iter_mut().zip(&bias) {
                        *l += b;
                    }
                    let probs = softmax(&logits);
                    epoch_loss += -(probs[labels[i]].max(1e-12) as f64).ln();
                    for c in 0..num_classes {
                        let err = probs[c] - if c == labels[i] { 1.0 } else { 0.0 };
                        grad_b[c] += err;
                        let row = grad_w.row_mut(c);
                        for (g, &xv) in row.iter_mut().zip(x.iter()) {
                            *g += err * xv;
                        }
                    }
                }
                let scale = cfg.learning_rate / chunk.len() as f32;
                // L2 shrink (weights only).
                if cfg.l2 > 0.0 {
                    weights.scale(1.0 - cfg.learning_rate * cfg.l2);
                }
                weights.axpy(-scale, &grad_w);
                for (b, g) in bias.iter_mut().zip(&grad_b) {
                    *b -= scale * g;
                }
            }
            let epoch_loss = epoch_loss / n as f64;
            if (prev_loss - epoch_loss).abs() < cfg.tolerance * prev_loss.abs().max(1e-9) {
                break;
            }
            prev_loss = epoch_loss;
        }

        Self {
            weights,
            bias,
            dim,
            num_classes,
        }
    }
}

impl Classifier for SoftmaxModel {
    fn predict_proba(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        let mut logits = self.weights.matvec(x);
        for (l, b) in logits.iter_mut().zip(&self.bias) {
            *l += b;
        }
        softmax(&logits)
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

/// One-vs-rest logistic regression for multi-label tasks. Each class gets an
/// independent binary head; `predict_proba` returns per-class sigmoid
/// probabilities (not a distribution).
#[derive(Debug, Clone)]
pub struct OneVsRestModel {
    /// `num_classes × dim` weight matrix.
    weights: Matrix,
    bias: Vec<f32>,
    dim: usize,
    num_classes: usize,
}

impl OneVsRestModel {
    /// Trains one binary logistic head per class.
    ///
    /// * `label_sets` — for each example, the set of positive class indices.
    ///
    /// # Panics
    /// Panics on empty input, ragged features, or out-of-range labels.
    pub fn fit(
        features: &[Vec<f32>],
        label_sets: &[Vec<usize>],
        num_classes: usize,
        cfg: &TrainConfig,
    ) -> Self {
        Self::fit_impl(features, label_sets, num_classes, cfg, cfg.epochs, None)
    }

    /// Fine-tunes `init`'s heads for `cfg.warm_epochs` passes instead of
    /// training from zeros — the multi-label side of the Model Manager's
    /// warm-start path.
    ///
    /// # Panics
    /// Panics on the same invalid inputs as [`OneVsRestModel::fit`], or when
    /// `init` does not match `num_classes` / the feature dimensionality.
    pub fn fit_warm(
        features: &[Vec<f32>],
        label_sets: &[Vec<usize>],
        num_classes: usize,
        cfg: &TrainConfig,
        init: &OneVsRestModel,
    ) -> Self {
        assert_eq!(init.num_classes, num_classes, "init class-count mismatch");
        assert!(!features.is_empty(), "cannot train on an empty set");
        assert_eq!(init.dim, features[0].len(), "init dimension mismatch");
        Self::fit_impl(
            features,
            label_sets,
            num_classes,
            cfg,
            cfg.warm_epochs,
            Some((init.weights.clone(), init.bias.clone())),
        )
    }

    /// The `num_classes × dim` weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The per-class bias.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    fn fit_impl(
        features: &[Vec<f32>],
        label_sets: &[Vec<usize>],
        num_classes: usize,
        cfg: &TrainConfig,
        epochs: usize,
        init: Option<(Matrix, Vec<f32>)>,
    ) -> Self {
        assert!(!features.is_empty(), "cannot train on an empty set");
        assert_eq!(features.len(), label_sets.len());
        assert!(num_classes >= 1);
        let dim = features[0].len();
        assert!(features.iter().all(|f| f.len() == dim));
        assert!(label_sets
            .iter()
            .all(|ls| ls.iter().all(|&l| l < num_classes)));

        // Dense 0/1 targets per class.
        let n = features.len();
        let mut targets = vec![vec![0.0f32; n]; num_classes];
        for (i, ls) in label_sets.iter().enumerate() {
            for &c in ls {
                targets[c][i] = 1.0;
            }
        }

        let (mut weights, mut bias) =
            init.unwrap_or_else(|| (Matrix::zeros(num_classes, dim), vec![0.0f32; num_classes]));
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..n).collect();

        for _epoch in 0..epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                let mut grad_w = Matrix::zeros(num_classes, dim);
                let mut grad_b = vec![0.0f32; num_classes];
                for &i in chunk {
                    let x = &features[i];
                    for c in 0..num_classes {
                        let z = dot(weights.row(c), x) + bias[c];
                        let p = sigmoid(z);
                        let err = p - targets[c][i];
                        grad_b[c] += err;
                        let row = grad_w.row_mut(c);
                        for (g, &xv) in row.iter_mut().zip(x.iter()) {
                            *g += err * xv;
                        }
                    }
                }
                let scale = cfg.learning_rate / chunk.len() as f32;
                if cfg.l2 > 0.0 {
                    weights.scale(1.0 - cfg.learning_rate * cfg.l2);
                }
                weights.axpy(-scale, &grad_w);
                for (b, g) in bias.iter_mut().zip(&grad_b) {
                    *b -= scale * g;
                }
            }
        }

        Self {
            weights,
            bias,
            dim,
            num_classes,
        }
    }
}

impl Classifier for OneVsRestModel {
    fn predict_proba(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        (0..self.num_classes)
            .map(|c| sigmoid(dot(self.weights.row(c), x) + self.bias[c]))
            .collect()
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

/// A trained model of either kind, as stored by the Model Manager.
#[derive(Debug, Clone)]
pub enum TrainedModel {
    /// Single-label softmax model.
    Softmax(SoftmaxModel),
    /// Multi-label one-vs-rest model.
    OneVsRest(OneVsRestModel),
}

impl TrainedModel {
    /// The label kind this model was trained for.
    pub fn kind(&self) -> LabelKind {
        match self {
            TrainedModel::Softmax(_) => LabelKind::SingleLabel,
            TrainedModel::OneVsRest(_) => LabelKind::MultiLabel,
        }
    }
}

impl Classifier for TrainedModel {
    fn predict_proba(&self, x: &[f32]) -> Vec<f32> {
        match self {
            TrainedModel::Softmax(m) => m.predict_proba(x),
            TrainedModel::OneVsRest(m) => m.predict_proba(x),
        }
    }

    fn num_classes(&self) -> usize {
        match self {
            TrainedModel::Softmax(m) => m.num_classes(),
            TrainedModel::OneVsRest(m) => m.num_classes(),
        }
    }

    fn dim(&self) -> usize {
        match self {
            TrainedModel::Softmax(m) => m.dim(),
            TrainedModel::OneVsRest(m) => m.dim(),
        }
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    // ve-lint: allow(float-reduction-order) -- max is order-insensitive (commutative and associative)
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    // ve-lint: allow(float-reduction-order) -- slice iteration order is fixed
    let sum: f32 = exps.iter().sum::<f32>();
    exps.iter().map(|e| e / sum).collect()
}

/// Logistic sigmoid.
pub fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Index of the largest element (first on ties).
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate().skip(1) {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn blob_dataset(
        n_per_class: usize,
        centers: &[[f32; 2]],
        noise: f32,
        seed: u64,
    ) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (c, center) in centers.iter().enumerate() {
            for _ in 0..n_per_class {
                let dx: f32 = rng.gen::<f32>() * 2.0 - 1.0;
                let dy: f32 = rng.gen::<f32>() * 2.0 - 1.0;
                xs.push(vec![center[0] + noise * dx, center[1] + noise * dy]);
                ys.push(c);
            }
        }
        (xs, ys)
    }

    #[test]
    fn softmax_sums_to_one_and_orders_correctly() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let p = softmax(&[1000.0, 0.0]);
        assert!(p[0] > 0.999 && p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(100.0) <= 1.0);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn softmax_model_learns_separable_blobs() {
        let (xs, ys) = blob_dataset(60, &[[0.0, 0.0], [4.0, 4.0], [-4.0, 4.0]], 0.7, 1);
        let model = SoftmaxModel::fit(&xs, &ys, 3, &TrainConfig::default());
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| model.predict(x) == y)
            .count();
        assert!(
            correct as f64 / xs.len() as f64 > 0.95,
            "accuracy {}",
            correct as f64 / xs.len() as f64
        );
    }

    #[test]
    fn softmax_model_with_unobserved_classes() {
        // The vocabulary has 5 classes but only 2 appear in the labels; the
        // model must still output a 5-way distribution.
        let (xs, ys) = blob_dataset(30, &[[0.0, 0.0], [5.0, 5.0]], 0.5, 2);
        let model = SoftmaxModel::fit(&xs, &ys, 5, &TrainConfig::default());
        let probs = model.predict_proba(&xs[0]);
        assert_eq!(probs.len(), 5);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(
            model.predict(&xs[0]) < 2,
            "should predict an observed class"
        );
    }

    #[test]
    fn softmax_probabilities_track_confidence() {
        let (xs, ys) = blob_dataset(50, &[[0.0, 0.0], [6.0, 0.0]], 0.5, 3);
        let model = SoftmaxModel::fit(&xs, &ys, 2, &TrainConfig::default());
        // A point far on class 1's side should get a confident class-1 score.
        let p = model.predict_proba(&[6.0, 0.0]);
        assert!(p[1] > 0.9, "p={p:?}");
        // The midpoint should be uncertain.
        let p_mid = model.predict_proba(&[3.0, 0.0]);
        assert!(p_mid[0] > 0.2 && p_mid[0] < 0.8, "p_mid={p_mid:?}");
    }

    #[test]
    fn one_vs_rest_learns_independent_labels() {
        // Label 0 active when x > 0, label 1 active when y > 0.
        let mut rng = StdRng::seed_from_u64(4);
        let mut xs = Vec::new();
        let mut ls = Vec::new();
        for _ in 0..400 {
            let x: f32 = rng.gen::<f32>() * 4.0 - 2.0;
            let y: f32 = rng.gen::<f32>() * 4.0 - 2.0;
            let mut labels = Vec::new();
            if x > 0.0 {
                labels.push(0);
            }
            if y > 0.0 {
                labels.push(1);
            }
            xs.push(vec![x, y]);
            ls.push(labels);
        }
        let model = OneVsRestModel::fit(&xs, &ls, 2, &TrainConfig::default());
        let p = model.predict_proba(&[1.5, -1.5]);
        assert!(p[0] > 0.7 && p[1] < 0.3, "p={p:?}");
        let p = model.predict_proba(&[-1.5, 1.5]);
        assert!(p[0] < 0.3 && p[1] > 0.7, "p={p:?}");
    }

    #[test]
    fn trained_model_enum_dispatch() {
        let (xs, ys) = blob_dataset(20, &[[0.0, 0.0], [5.0, 5.0]], 0.5, 5);
        let m = TrainedModel::Softmax(SoftmaxModel::fit(&xs, &ys, 2, &TrainConfig::default()));
        assert_eq!(m.kind(), LabelKind::SingleLabel);
        assert_eq!(m.num_classes(), 2);
        assert_eq!(m.dim(), 2);
        assert_eq!(m.predict_proba(&xs[0]).len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn fit_rejects_empty_training_set() {
        SoftmaxModel::fit(&[], &[], 2, &TrainConfig::default());
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn fit_rejects_out_of_range_label() {
        SoftmaxModel::fit(
            &[vec![0.0, 1.0], vec![1.0, 0.0]],
            &[0, 5],
            2,
            &TrainConfig::default(),
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = blob_dataset(30, &[[0.0, 0.0], [3.0, 3.0]], 1.0, 6);
        let cfg = TrainConfig::default();
        let a = SoftmaxModel::fit(&xs, &ys, 2, &cfg);
        let b = SoftmaxModel::fit(&xs, &ys, 2, &cfg);
        assert_eq!(a.predict_proba(&xs[0]), b.predict_proba(&xs[0]));
    }

    #[test]
    fn warm_fit_with_zero_epochs_returns_init_unchanged() {
        let (xs, ys) = blob_dataset(30, &[[0.0, 0.0], [4.0, 4.0]], 0.7, 7);
        let cfg = TrainConfig::default();
        let cold = SoftmaxModel::fit(&xs, &ys, 2, &cfg);
        let frozen = TrainConfig {
            warm_epochs: 0,
            ..cfg
        };
        let warm = SoftmaxModel::fit_warm(&xs, &ys, 2, &frozen, &cold);
        assert_eq!(warm.weights().as_slice(), cold.weights().as_slice());
        assert_eq!(warm.bias(), cold.bias());
    }

    #[test]
    fn warm_fit_is_deterministic_and_keeps_accuracy() {
        let (xs, ys) = blob_dataset(50, &[[0.0, 0.0], [5.0, 5.0], [-5.0, 5.0]], 0.7, 8);
        let cfg = TrainConfig::default();
        // Cold model on the first two thirds, warm fine-tune on a small
        // mixed subset including the last third.
        let split = xs.len() * 2 / 3;
        let cold = SoftmaxModel::fit(&xs[..split], &ys[..split], 3, &cfg);
        let tune_x: Vec<Vec<f32>> = xs[split - 20..].to_vec();
        let tune_y: Vec<usize> = ys[split - 20..].to_vec();
        let a = SoftmaxModel::fit_warm(&tune_x, &tune_y, 3, &cfg, &cold);
        let b = SoftmaxModel::fit_warm(&tune_x, &tune_y, 3, &cfg, &cold);
        assert_eq!(
            a.predict_proba(&xs[0]),
            b.predict_proba(&xs[0]),
            "warm fit must be deterministic given seed and init"
        );
        let accuracy = |m: &SoftmaxModel| {
            xs.iter()
                .zip(&ys)
                .filter(|(x, &y)| m.predict(x) == y)
                .count() as f64
                / xs.len() as f64
        };
        assert!(
            accuracy(&a) > 0.9,
            "warm fine-tune must not destroy the separable-blob fit: {}",
            accuracy(&a)
        );
    }

    #[test]
    fn one_vs_rest_warm_fit_refines_heads() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut xs = Vec::new();
        let mut ls = Vec::new();
        for _ in 0..300 {
            let x: f32 = rng.gen::<f32>() * 4.0 - 2.0;
            let y: f32 = rng.gen::<f32>() * 4.0 - 2.0;
            let mut labels = Vec::new();
            if x > 0.0 {
                labels.push(0);
            }
            if y > 0.0 {
                labels.push(1);
            }
            xs.push(vec![x, y]);
            ls.push(labels);
        }
        let cfg = TrainConfig::default();
        let cold = OneVsRestModel::fit(&xs[..200], &ls[..200], 2, &cfg);
        let warm = OneVsRestModel::fit_warm(&xs[180..], &ls[180..], 2, &cfg, &cold);
        let p = warm.predict_proba(&[1.5, -1.5]);
        assert!(p[0] > 0.7 && p[1] < 0.3, "p={p:?}");
    }

    #[test]
    #[should_panic(expected = "init dimension mismatch")]
    fn warm_fit_rejects_dimension_mismatch() {
        let (xs, ys) = blob_dataset(10, &[[0.0, 0.0], [4.0, 4.0]], 0.5, 10);
        let cfg = TrainConfig::default();
        let cold = SoftmaxModel::fit(&xs, &ys, 2, &cfg);
        SoftmaxModel::fit_warm(&[vec![0.0; 3]], &[0], 2, &cfg, &cold);
    }
}
