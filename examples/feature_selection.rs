//! Feature-extractor selection with the rising bandit (Section 3.2).
//!
//! VOCALExplore starts with five candidate pretrained feature extractors
//! (Table 3) and must converge on one of the best for the dataset at hand
//! without a validation set. This example runs the rising bandit on the Deer
//! dataset and prints the per-step bounds so you can watch arms being
//! eliminated, then reports which extractor was chosen and how good its final
//! model is compared with the worst candidate.
//!
//! Run with:
//! ```text
//! cargo run --release --example feature_selection
//! ```

use vocalexplore::prelude::*;
use vocalexplore::FeatureSelectionPolicy;

fn main() {
    let dataset = DatasetName::Deer;
    println!("Rising-bandit feature selection on {dataset} (T = 50, C = 5, w = 5)\n");

    let mut session = SessionConfig::new(dataset, 0.4, 11)
        .with_iterations(45)
        .with_eval_every(45);
    session.system = session
        .system
        .with_feature_selection(FeatureSelectionPolicy::Bandit(RisingBanditConfig::default()));
    session.system.train.epochs = 60;

    // Drive the session manually so we can print bandit snapshots per step.
    let runner = SessionRunner::new(session.clone());
    let outcome = runner.run();

    println!("iteration | alive extractors | current choice");
    println!("----------+------------------+---------------");
    let mut last_alive = usize::MAX;
    for record in &outcome.records {
        if record.active_extractors != last_alive {
            println!(
                "{:9} | {:16} | {}",
                record.iteration, record.active_extractors, record.current_extractor
            );
            last_alive = record.active_extractors;
        }
    }

    match outcome.feature_selected_at {
        Some(step) => println!(
            "\nConverged to {} at iteration {step} ({} labels).",
            outcome.final_extractor,
            outcome.records[step - 1].labels_total
        ),
        None => println!(
            "\nDid not fully converge within the horizon; currently using {}.",
            outcome.final_extractor
        ),
    }
    println!(
        "Final macro F1 with the selected feature: {:.3}",
        outcome.final_f1()
    );

    // For reference: what each fixed extractor would have achieved.
    println!("\nFixed-extractor baselines (same labeling budget):");
    for extractor in ExtractorId::all() {
        let mut baseline = session.clone();
        baseline.system = baseline
            .system
            .with_feature_selection(FeatureSelectionPolicy::Fixed(extractor));
        let f1 = SessionRunner::new(baseline).run().final_f1();
        println!("  {extractor:<14} F1 = {f1:.3}");
    }
}
