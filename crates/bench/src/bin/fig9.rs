//! Figure 9 — feature selection under label noise.
//!
//! Reruns the VE-select configuration (VE-sample (CM) sampling + rising
//! bandit) with a noisy oracle that randomly corrupts 5 %, 10 %, or 20 % of
//! labels, and compares the final macro F1 (and the correctness of the chosen
//! extractor) against the noise-free run and the worst fixed combination.
//!
//! Expected shape: 5 % and 10 % noise barely change the F1; 20 % noise drops
//! it but stays above the worst-performing feature/sampling combination.
//!
//! ```text
//! cargo run --release -p ve-bench --bin fig9 [-- --full]
//! ```

use ve_bench::{
    correct_extractors, print_header, print_row, with_fixed_feature, with_sampling, Profile,
};
use ve_stats::mean;
use vocalexplore::prelude::*;
use vocalexplore::SamplingPolicy;

fn main() {
    let profile = Profile::from_args();
    println!(
        "Figure 9: VE-select under label noise ({} iterations x {} seeds)\n",
        profile.iterations, profile.seeds
    );

    let noise_levels = [0.0, 0.05, 0.10, 0.20];
    let widths = [12, 12, 12, 12, 12, 14];
    let mut header = vec!["Dataset".to_string()];
    header.extend(
        noise_levels
            .iter()
            .map(|n| format!("noise {:.0}%", n * 100.0)),
    );
    header.push("Worst combo".to_string());
    print_header(
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &widths,
    );

    for dataset in DatasetName::all() {
        let mut cells = vec![dataset.to_string()];
        let correct_set = correct_extractors(dataset);
        for &noise in &noise_levels {
            let mut f1s = Vec::new();
            let mut correct = 0usize;
            for seed in 0..profile.seeds {
                let cfg = profile.session(dataset, seed * 101 + 7).with_noise(noise);
                let outcome = ve_bench::run_session(cfg);
                f1s.push(outcome.mean_f1_last(3));
                if correct_set.contains(&outcome.final_extractor) {
                    correct += 1;
                }
            }
            cells.push(format!("{:.3} ({}/{})", mean(&f1s), correct, profile.seeds));
        }
        // Worst combination: random sampling on the weakest pretrained feature.
        let worst_feat = ExtractorId::all()
            .into_iter()
            .filter(|e| *e != ExtractorId::Random)
            .min_by(|a, b| {
                ve_features::profiles::quality_for(dataset, *a)
                    .partial_cmp(&ve_features::profiles::quality_for(dataset, *b))
                    .unwrap()
            })
            .unwrap();
        let mut worst_f1s = Vec::new();
        for seed in 0..profile.seeds {
            let cfg = with_fixed_feature(
                with_sampling(
                    profile.session(dataset, seed * 101 + 7),
                    SamplingPolicy::Fixed(AcquisitionKind::Random),
                ),
                worst_feat,
            );
            worst_f1s.push(ve_bench::run_session(cfg).mean_f1_last(3));
        }
        cells.push(format!("{:.3}", mean(&worst_f1s)));
        print_row(&cells, &widths);
    }
    println!(
        "\nCells show mean F1 with (number of seeds that selected a correct extractor).\n\
         Expected shape: ≤10% noise ≈ no noise; 20% noise drops F1 but stays above the worst\n\
         fixed combination."
    );
}
