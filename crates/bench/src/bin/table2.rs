//! Table 2 — dataset inventory.
//!
//! Prints the six evaluation datasets with their class counts, skew, and
//! train/eval corpus sizes, plus the properties of the synthetic corpora this
//! repository actually generates (which match the paper's sizes at scale 1.0).
//!
//! ```text
//! cargo run --release -p ve-bench --bin table2 [-- --full]
//! ```

use ve_bench::{print_header, print_row};
use ve_stats::s_max;
use ve_vidsim::{Dataset, DatasetName, DatasetSpec, TaskKind};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full { 1.0 } else { 0.25 };

    println!("Table 2: Datasets (paper specification)\n");
    let widths = [12, 9, 8, 13, 12, 12];
    print_header(
        &[
            "Dataset",
            "#classes",
            "Skew",
            "Train videos",
            "Eval videos",
            "Task",
        ],
        &widths,
    );
    for name in DatasetName::all() {
        let spec = DatasetSpec::paper(name);
        print_row(
            &[
                spec.name.to_string(),
                spec.num_classes.to_string(),
                if spec.skewed { "Skewed" } else { "Uniform" }.to_string(),
                spec.train_videos.to_string(),
                spec.eval_videos.to_string(),
                match spec.task {
                    TaskKind::SingleLabel => "single-label",
                    TaskKind::MultiLabel => "multi-label",
                }
                .to_string(),
            ],
            &widths,
        );
    }

    println!("\nGenerated corpora at scale {scale} (verifying class-count shape):\n");
    let widths = [12, 13, 12, 14, 16];
    print_header(
        &[
            "Dataset",
            "Train videos",
            "Eval videos",
            "Train S_max",
            "Imbalance ratio",
        ],
        &widths,
    );
    for name in DatasetName::all() {
        let ds = Dataset::scaled(name, scale, 7);
        // Count ground-truth activity occurrences at the segment level — the
        // same granularity at which the user labels and at which VE-sample
        // observes skew.
        let mut counts = vec![0u64; ds.vocabulary.len()];
        for clip in ds.train.videos() {
            for seg in &clip.segments {
                for &c in &seg.classes {
                    counts[c] += 1;
                }
            }
        }
        let max = *counts.iter().max().unwrap_or(&0) as f64;
        let min = *counts.iter().min().unwrap_or(&0) as f64;
        print_row(
            &[
                name.to_string(),
                ds.train.len().to_string(),
                ds.eval.len().to_string(),
                format!("{:.2}", s_max(&counts)),
                format!("{:.1}", max / min.max(1.0)),
            ],
            &widths,
        );
    }
    println!(
        "\nS_max = fraction of ground-truth segment labels in the most common class; the skewed\n\
         datasets (Deer, K20 (skew), Charades, BDD) show large imbalance ratios, the uniform\n\
         ones (K20, Bears) do not."
    );
}
