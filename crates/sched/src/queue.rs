//! A priority task queue: Critical before Normal before Background, FIFO
//! within each priority class. This is the ordering that lets `VE-full`
//! enqueue eager feature-extraction work without ever delaying a task that a
//! pending API call is waiting on.

use crate::task::{Priority, Task, TaskId, TaskKind};
use std::collections::VecDeque;

/// FIFO-within-priority task queue.
#[derive(Debug, Default)]
pub struct PriorityTaskQueue {
    critical: VecDeque<Task>,
    normal: VecDeque<Task>,
    background: VecDeque<Task>,
    next_id: u64,
}

impl PriorityTaskQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a task built from its parts, assigning it a fresh id.
    pub fn submit(&mut self, kind: TaskKind, cost_secs: f64, tag: impl Into<String>) -> TaskId {
        let id = TaskId(self.next_id);
        self.next_id += 1;
        self.push(Task::new(id, kind, cost_secs, tag));
        id
    }

    /// Enqueues an already-constructed task (its id is preserved).
    pub fn push(&mut self, task: Task) {
        self.next_id = self.next_id.max(task.id.0 + 1);
        match task.priority {
            Priority::Critical => self.critical.push_back(task),
            Priority::Normal => self.normal.push_back(task),
            Priority::Background => self.background.push_back(task),
        }
    }

    /// Removes and returns the highest-priority task.
    pub fn pop(&mut self) -> Option<Task> {
        self.critical
            .pop_front()
            .or_else(|| self.normal.pop_front())
            .or_else(|| self.background.pop_front())
    }

    /// Peeks at the task that `pop` would return.
    pub fn peek(&self) -> Option<&Task> {
        self.critical
            .front()
            .or_else(|| self.normal.front())
            .or_else(|| self.background.front())
    }

    /// Total number of queued tasks.
    pub fn len(&self) -> usize {
        self.critical.len() + self.normal.len() + self.background.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of queued tasks at the given priority.
    pub fn len_at(&self, priority: Priority) -> usize {
        match priority {
            Priority::Critical => self.critical.len(),
            Priority::Normal => self.normal.len(),
            Priority::Background => self.background.len(),
        }
    }

    /// Whether any non-background work is pending — the condition `VE-full`
    /// checks before enqueueing more eager extraction ("whenever the task
    /// queue is empty").
    pub fn has_foreground_work(&self) -> bool {
        !self.critical.is_empty() || !self.normal.is_empty()
    }

    /// Drops every queued background task (the guardrail for stopping eager
    /// extraction); returns how many were removed.
    pub fn cancel_background(&mut self) -> usize {
        let n = self.background.len();
        self.background.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_priority_then_fifo_order() {
        let mut q = PriorityTaskQueue::new();
        q.submit(TaskKind::EagerFeatureExtraction, 1.0, "bg-1");
        q.submit(TaskKind::ModelTraining, 1.0, "train-1");
        q.submit(TaskKind::ModelInference, 1.0, "infer-1");
        q.submit(TaskKind::ModelInference, 1.0, "infer-2");
        q.submit(TaskKind::FeatureEvaluation, 1.0, "eval-1");

        let order: Vec<String> = std::iter::from_fn(|| q.pop()).map(|t| t.tag).collect();
        assert_eq!(
            order,
            vec!["infer-1", "infer-2", "train-1", "eval-1", "bg-1"]
        );
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = PriorityTaskQueue::new();
        q.submit(TaskKind::ModelTraining, 1.0, "a");
        q.submit(TaskKind::SampleSelection, 1.0, "b");
        assert_eq!(q.peek().unwrap().tag, "b");
        assert_eq!(q.pop().unwrap().tag, "b");
        assert_eq!(q.pop().unwrap().tag, "a");
        assert!(q.pop().is_none());
    }

    #[test]
    fn counts_and_foreground_check() {
        let mut q = PriorityTaskQueue::new();
        assert!(!q.has_foreground_work());
        q.submit(TaskKind::EagerFeatureExtraction, 1.0, "bg");
        assert!(
            !q.has_foreground_work(),
            "background work alone is not foreground"
        );
        q.submit(TaskKind::ModelTraining, 1.0, "train");
        assert!(q.has_foreground_work());
        assert_eq!(q.len(), 2);
        assert_eq!(q.len_at(Priority::Background), 1);
        assert_eq!(q.len_at(Priority::Normal), 1);
        assert_eq!(q.len_at(Priority::Critical), 0);
    }

    #[test]
    fn cancel_background_only_touches_background() {
        let mut q = PriorityTaskQueue::new();
        q.submit(TaskKind::EagerFeatureExtraction, 1.0, "bg1");
        q.submit(TaskKind::EagerFeatureExtraction, 1.0, "bg2");
        q.submit(TaskKind::ModelInference, 1.0, "crit");
        assert_eq!(q.cancel_background(), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().tag, "crit");
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let mut q = PriorityTaskQueue::new();
        let a = q.submit(TaskKind::ModelTraining, 1.0, "a");
        let b = q.submit(TaskKind::ModelTraining, 1.0, "b");
        assert!(b > a);
    }
}
