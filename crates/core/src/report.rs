//! Session reports and post-mortem diagnostic bundles.
//!
//! Two consumers of a finished [`AsyncSessionOutcome`]:
//!
//! * [`SessionReport`] — a compact summary with an **anomaly section**:
//!   timing-plane findings (phase outliers, queue-wait spikes — see
//!   `ve_obs::anomaly`) plus **retry storms** detected here from the
//!   deterministic event plane (re-run `TrainAttempt` counts, no wall
//!   clock involved) and joined back to the timing plane for trace
//!   placement.
//! * [`DiagnosticBundle`] — the flight-recorder dump: last-N events,
//!   joined timing spans, `ExecutorStats`, the degradation ledger, and the
//!   anomaly section as one JSON document. `ve-bench`'s `bench_obs` emits
//!   one automatically whenever a session absorbed a `Degraded` event.
//!
//! All JSON is hand-rolled (no serde in this environment) with keys in
//! sorted order, so documents are deterministic for a given outcome.

use crate::observability::SessionEvent;
use crate::session::AsyncSessionOutcome;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use ve_obs::{detect_timing_anomalies, Anomaly, AnomalyConfig, AnomalyKind, EventKind, TaskTiming};

/// Detects retry storms from the event plane: an iteration that re-ran
/// training for one extractor at least `cfg.retry_storm_attempts` times.
/// Purely integer event counting — deterministic at any parallelism — with
/// the trace position joined from the (wall-clock) timing plane when a
/// matching `train` task span exists.
pub fn retry_storms(
    events: &[(u32, SessionEvent)],
    timings: &[TaskTiming],
    cfg: &AnomalyConfig,
) -> Vec<Anomaly> {
    let mut reruns: BTreeMap<(u32, String), u64> = BTreeMap::new();
    for (bucket, event) in events {
        if let SessionEvent::TrainAttempt {
            extractor, attempt, ..
        } = event
        {
            if *attempt >= 1 {
                *reruns
                    .entry((*bucket, format!("{extractor:?}")))
                    .or_insert(0) += 1;
            }
        }
    }
    reruns
        .into_iter()
        .filter(|(_, count)| *count >= cfg.retry_storm_attempts)
        .map(|((iteration, extractor), count)| {
            // Place the marker on the worker track that ran the window's
            // training, if the timing plane recorded one.
            let spot = timings
                .iter()
                .find(|t| t.label.kind == "train" && t.label.iteration == iteration);
            Anomaly {
                kind: AnomalyKind::RetryStorm,
                label: extractor,
                iteration,
                observed: count,
                baseline: cfg.retry_storm_attempts,
                pid: 0,
                tid: spot.map_or(0, |t| 1 + t.worker as u64),
                ts_us: spot.map_or(0, |t| t.start_us),
            }
        })
        .collect()
}

/// Every anomaly of a finished session: timing-plane outliers/spikes plus
/// event-plane retry storms, in trace-timestamp order.
pub fn detect_session_anomalies(out: &AsyncSessionOutcome, cfg: &AnomalyConfig) -> Vec<Anomaly> {
    let mut anomalies = detect_timing_anomalies(&out.timings, &out.phases, cfg);
    anomalies.extend(retry_storms(&out.events, &out.timings, cfg));
    anomalies.sort_by(|a, b| {
        (a.ts_us, a.kind, &a.label, a.iteration).cmp(&(b.ts_us, b.kind, &b.label, b.iteration))
    });
    anomalies
}

/// Compact end-of-session summary with the anomaly section.
pub struct SessionReport {
    pub iterations: usize,
    pub events_total: usize,
    pub degradations: usize,
    pub dropped_events: Vec<(&'static str, u64)>,
    pub executor: ve_sched::ExecutorStats,
    pub anomalies: Vec<Anomaly>,
}

impl SessionReport {
    pub fn from_outcome(out: &AsyncSessionOutcome, cfg: &AnomalyConfig) -> Self {
        Self {
            iterations: out.iterations.len(),
            events_total: out.events.len(),
            degradations: out.degradations.len(),
            dropped_events: out.dropped_events.clone(),
            executor: out.executor,
            anomalies: detect_session_anomalies(out, cfg),
        }
    }

    pub fn render_json(&self) -> String {
        let mut o = String::from("{\n");
        let _ = writeln!(
            o,
            "  \"anomalies\": {},",
            render_anomalies(&self.anomalies, 2)
        );
        let _ = writeln!(o, "  \"degradations\": {},", self.degradations);
        let _ = writeln!(
            o,
            "  \"dropped_events\": {},",
            render_dropped(&self.dropped_events)
        );
        let _ = writeln!(o, "  \"events_total\": {},", self.events_total);
        let _ = writeln!(o, "  \"executor\": {},", self.executor.render_json());
        let _ = writeln!(o, "  \"iterations\": {},", self.iterations);
        o.push_str("  \"schema\": \"vocalexplore/session_report/v1\"\n}\n");
        o
    }
}

/// The flight-recorder dump: everything needed for a post-mortem, as one
/// key-sorted JSON document.
pub struct DiagnosticBundle {
    /// The most recent `last_n` retained events (canonical order tail).
    pub last_events: Vec<(u32, SessionEvent)>,
    pub timings: Vec<TaskTiming>,
    pub phases: Vec<ve_obs::PhaseTiming>,
    pub executor: ve_sched::ExecutorStats,
    pub degradations: Vec<String>,
    pub dropped_events: Vec<(&'static str, u64)>,
    pub anomalies: Vec<Anomaly>,
}

impl DiagnosticBundle {
    pub fn from_outcome(out: &AsyncSessionOutcome, last_n: usize, cfg: &AnomalyConfig) -> Self {
        let skip = out.events.len().saturating_sub(last_n);
        Self {
            last_events: out.events[skip..].to_vec(),
            timings: out.timings.clone(),
            phases: out.phases.clone(),
            executor: out.executor,
            degradations: out.degradations.iter().map(|d| format!("{d:?}")).collect(),
            dropped_events: out.dropped_events.clone(),
            anomalies: detect_session_anomalies(out, cfg),
        }
    }

    pub fn render_json(&self) -> String {
        let mut o = String::from("{\n");
        let _ = writeln!(
            o,
            "  \"anomalies\": {},",
            render_anomalies(&self.anomalies, 2)
        );
        o.push_str("  \"degradations\": [");
        for (i, d) in self.degradations.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(o, "{sep}\n    \"{}\"", esc(d));
        }
        o.push_str(if self.degradations.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        let _ = writeln!(
            o,
            "  \"dropped_events\": {},",
            render_dropped(&self.dropped_events)
        );
        let _ = writeln!(o, "  \"executor\": {},", self.executor.render_json());
        o.push_str("  \"last_events\": [");
        for (i, (iteration, event)) in self.last_events.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                o,
                "{sep}\n    {{\"detail\": \"{}\", \"iteration\": {iteration}, \"kind\": \"{}\"}}",
                esc(&format!("{event:?}")),
                event.kind()
            );
        }
        o.push_str(if self.last_events.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        o.push_str("  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                o,
                "{sep}\n    {{\"dur_us\": {}, \"iteration\": {}, \"phase\": \"{}\", \"start_us\": {}}}",
                p.dur_us, p.iteration, p.phase, p.start_us
            );
        }
        o.push_str(if self.phases.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        o.push_str("  \"schema\": \"vocalexplore/diagnostic_bundle/v1\",\n");
        o.push_str("  \"timings\": [");
        for (i, t) in self.timings.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                o,
                "{sep}\n    {{\"class\": \"{}\", \"end_us\": {}, \"iteration\": {}, \
                 \"kind\": \"{}\", \"queue_wait_us\": {}, \"span\": {}, \"start_us\": {}, \
                 \"worker\": {}}}",
                t.class.label(),
                t.end_us,
                t.label.iteration,
                t.label.kind,
                t.queue_wait_us(),
                t.span,
                t.start_us,
                t.worker
            );
        }
        o.push_str(if self.timings.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        o.push_str("}\n");
        o
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_dropped(dropped: &[(&'static str, u64)]) -> String {
    let body: Vec<String> = dropped
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect();
    format!("{{{}}}", body.join(", "))
}

fn render_anomalies(anomalies: &[Anomaly], indent: usize) -> String {
    if anomalies.is_empty() {
        return "[]".to_string();
    }
    let pad = " ".repeat(indent);
    let mut o = String::from("[");
    for (i, a) in anomalies.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            o,
            "{sep}\n{pad}  {{\"baseline\": {}, \"factor_x100\": {}, \"iteration\": {}, \
             \"kind\": \"{}\", \"label\": \"{}\", \"observed\": {}, \"tid\": {}, \"ts_us\": {}}}",
            a.baseline,
            a.factor_x100(),
            a.iteration,
            a.kind.label(),
            esc(&a.label),
            a.observed,
            a.tid,
            a.ts_us
        );
    }
    let _ = write!(o, "\n{pad}]");
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use ve_features::ExtractorId;
    use ve_obs::{QueueClass, TaskLabel};

    fn attempt(bucket: u32, attempt: u32) -> (u32, SessionEvent) {
        (
            bucket,
            SessionEvent::TrainAttempt {
                extractor: ExtractorId::R3d,
                iteration: bucket,
                attempt,
                ok: false,
            },
        )
    }

    fn train_timing(iteration: u32, worker: usize, start_us: u64) -> TaskTiming {
        TaskTiming {
            span: 9,
            label: TaskLabel::new("train", iteration),
            class: QueueClass::Normal,
            worker,
            submit_us: start_us,
            start_us,
            end_us: start_us + 10,
        }
    }

    #[test]
    fn retry_storm_counts_reruns_per_iteration_and_joins_timing() {
        let events = vec![
            attempt(3, 0),
            attempt(3, 1),
            attempt(3, 2),
            attempt(5, 0),
            attempt(5, 1), // one re-run: below the default threshold of 2
        ];
        let timings = vec![train_timing(3, 1, 777)];
        let storms = retry_storms(&events, &timings, &AnomalyConfig::default());
        assert_eq!(storms.len(), 1);
        let s = &storms[0];
        assert_eq!(s.kind, AnomalyKind::RetryStorm);
        assert_eq!(s.iteration, 3);
        assert_eq!(s.observed, 2);
        assert_eq!(s.label, "R3d");
        assert_eq!(s.tid, 2); // worker 1's track
        assert_eq!(s.ts_us, 777);
    }

    #[test]
    fn storm_without_timing_join_lands_on_the_session_track() {
        let events = vec![attempt(1, 1), attempt(1, 2)];
        let storms = retry_storms(&events, &[], &AnomalyConfig::default());
        assert_eq!(storms.len(), 1);
        assert_eq!((storms[0].tid, storms[0].ts_us), (0, 0));
    }

    #[test]
    fn anomaly_json_is_stable_and_escaped() {
        let anomalies = vec![Anomaly {
            kind: AnomalyKind::RetryStorm,
            label: "R3d".to_string(),
            iteration: 3,
            observed: 2,
            baseline: 2,
            pid: 0,
            tid: 2,
            ts_us: 777,
        }];
        let a = render_anomalies(&anomalies, 0);
        let b = render_anomalies(&anomalies, 0);
        assert_eq!(a, b);
        assert!(a.contains("\"kind\": \"retry_storm\""), "{a}");
        assert!(a.contains("\"factor_x100\": 100"), "{a}");
    }
}
