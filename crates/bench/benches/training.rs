//! Microbenchmarks for model training and cross-validated feature evaluation
//! (`T_m` and `T_e` tasks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use ve_ml::{cross_validate, CrossValConfig, SoftmaxModel, TrainConfig};

fn blobs(n: usize, classes: usize, dim: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..classes)
        .map(|_| (0..dim).map(|_| rng.gen::<f32>() * 4.0 - 2.0).collect())
        .collect();
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % classes;
        xs.push(
            centers[c]
                .iter()
                .map(|&v| v + rng.gen::<f32>() - 0.5)
                .collect(),
        );
        ys.push(c);
    }
    (xs, ys)
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_training");
    group.sample_size(10);
    for &labels in &[50usize, 150, 500] {
        let (xs, ys) = blobs(labels, 9, 64, 3);
        let cfg = TrainConfig {
            epochs: 60,
            ..TrainConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("softmax_fit", labels), &labels, |b, _| {
            b.iter(|| black_box(SoftmaxModel::fit(&xs, &ys, 9, &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("cv_3fold", labels), &labels, |b, _| {
            let cv = CrossValConfig {
                train: cfg,
                ..CrossValConfig::default()
            };
            b.iter(|| black_box(cross_validate(&xs, &ys, 9, &cv)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
