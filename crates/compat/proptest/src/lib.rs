//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, range and
//! tuple strategies, [`collection::vec`], [`any`], string strategies (a
//! `&str` is interpreted as "arbitrary printable string", ignoring the exact
//! regex), and the `prop_assert*` macros. Failing inputs are reported with
//! their debug representation; shrinking is not implemented.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The value type produced.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32, f64, f32);

/// Marker for [`any`]-generated values.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical "arbitrary" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f32>() * 2e6 - 1e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f64>() * 2e6 - 1e6
    }
}

/// The canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A `&str` used as a strategy produces arbitrary printable strings (the
/// regex itself is not interpreted beyond "some unicode-ish text up to 64
/// chars" — every use in this workspace is a `\PC{0,n}`-style pattern).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        let len = rng.gen_range(0usize..64);
        (0..len)
            .map(|_| {
                // Mix ASCII printable with a few multi-byte code points so
                // UTF-8 round-trips are really exercised.
                match rng.gen_range(0usize..10) {
                    0 => 'é',
                    1 => '日',
                    2 => '🦀',
                    _ => (0x20u8 + rng.gen_range(0u8..0x5f)) as char,
                }
            })
            .collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident/$idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
);

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`vec`]: an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(std::ops::Range<usize>);

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self(exact..exact + 1)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            Self(r)
        }
    }

    /// Strategy producing `Vec`s with element strategy `S` and a length drawn
    /// from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `proptest::collection::vec(element, 0..n)` /
    /// `proptest::collection::vec(element, exact)`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let range = self.len.0.clone();
            let n = if range.end <= range.start + 1 {
                range.start
            } else {
                rng.gen_range(range)
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Error carried by `prop_assert*` failures.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Result type of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs `cases` random executions of `body`, reporting the first failure.
///
/// Each case gets a deterministic RNG derived from the property name so runs
/// are reproducible; panics inside the body propagate with the failing input
/// already printed by the generated harness.
pub fn run_cases(name: &str, cases: u32, mut body: impl FnMut(&mut StdRng, u32)) {
    // FNV-1a over the property name: stable per-property seed.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    for case in 0..cases {
        let mut rng = StdRng::seed_from_u64(seed ^ ((case as u64) << 32 | 0x9e37));
        body(&mut rng, case);
    }
}

pub mod prelude {
    //! One-stop imports for property tests.

    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy, TestCaseError, TestCaseResult};
    pub use rand::rngs::StdRng;
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Declares property tests.
///
/// Supported grammar (the subset of upstream proptest used here):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))] // optional
///     #[test]
///     fn my_property(x in 0usize..10, v in collection::vec(-1.0f32..1.0, 1..40)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), cfg.cases, |rng, _case| {
                    $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(panic) = result {
                        eprintln!("proptest case failed with inputs: {inputs}");
                        std::panic::resume_unwind(panic);
                    }
                });
            }
        )*
    };
    (
        $(
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                #[test]
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_respect_bounds(x in 3usize..17, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_len(v in collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuple_strategies_compose(t in (0u64..10, 0.0f64..1.0, collection::vec(any::<u8>(), 0..3))) {
            prop_assert!(t.0 < 10);
            prop_assert!((0.0..1.0).contains(&t.1));
            prop_assert!(t.2.len() < 3);
        }

        #[test]
        fn string_strategy_is_valid_utf8(s in "\\PC{0,64}") {
            prop_assert!(s.chars().count() <= 64);
        }
    }

    #[test]
    fn default_config_runs() {
        let mut count = 0u32;
        crate::run_cases("counter", 10, |_rng, _case| count += 1);
        assert_eq!(count, 10);
    }
}
