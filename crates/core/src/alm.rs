//! The Active Learning Manager (ALM, Section 3).
//!
//! The ALM owns the two selection problems VOCALExplore solves on the fly:
//!
//! 1. **Acquisition-function selection** — the [`ve_al::VeSample`] policy
//!    (or a fixed baseline function) decides whether the next batch is chosen
//!    by cheap random sampling or by an active-learning function, and
//!    [`ActiveLearningManager::select_segments`] executes that choice over
//!    the unlabeled portion of the corpus.
//! 2. **Feature-extractor selection** — a [`ve_bandit::RisingBandit`] over
//!    the candidate extractors, fed with cross-validated macro F1 after each
//!    labeling iteration, eliminates extractors until one remains.

use crate::acquisition_index::{AcquisitionIndex, AcquisitionIndexStats};
use crate::config::{FeatureSelectionPolicy, SamplingPolicy, VocalExploreConfig};
use crate::feature_manager::FeatureManager;
use crate::model_manager::ModelManager;
use crate::observability::{ObsHandle, SessionEvent};
use crate::prob_cache::{ProbCacheStats, ProbabilityCache};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use ve_al::{
    cluster_margin_selection, greedy_k_center, uncertainty_selection_from_probs, AcquisitionKind,
    ClusterMarginConfig, VeSample,
};
use ve_bandit::{RisingBandit, RisingBanditConfig};
use ve_features::ExtractorId;
use ve_storage::{LabelRecord, LabelStore};
use ve_vidsim::{ClassId, TimeRange, VideoCorpus, VideoId};

/// Statistics about the most recent selection (used for latency accounting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionStats {
    /// Acquisition function that produced the batch (after any
    /// coverage-only degradation — see `coverage_fallback`).
    pub acquisition: AcquisitionKind,
    /// Number of sampled videos whose features had to be extracted to serve
    /// the current call (0 under `VE-full`, where eager extraction already
    /// covered them).
    pub videos_extracted_for_call: usize,
    /// GPU seconds spent on those extractions.
    pub extraction_secs: f64,
    /// Lazily-extended candidate videos whose extraction permanently failed;
    /// selection proceeded over the remaining covered pool.
    pub candidates_lost: usize,
    /// Whether a probability-based acquisition fell back to coverage-only
    /// (coreset) selection because batch inference permanently failed.
    pub coverage_fallback: bool,
}

/// The Active Learning Manager.
pub struct ActiveLearningManager {
    config: VocalExploreConfig,
    sampling: SamplingState,
    features: FeatureState,
    /// Persistent candidate state for active-learning selection, kept alive
    /// across `Explore` calls and synced incrementally from the feature
    /// store's change log (`None` until the first active selection; replaced
    /// when the extractor or clip length changes).
    index: Option<AcquisitionIndex>,
    /// Model-version-aware probability rows layered over the index (see
    /// [`crate::prob_cache`] for the keying/invalidation contract). Always
    /// kept; `config.prob_cache` decides whether selections consult it.
    prob_cache: ProbabilityCache,
    /// Reused allocation for the per-call coreset-coverage copy consumed by
    /// `greedy_k_center` (the call's greedy picks must not leak into the
    /// persistent coverage, but the buffer itself can live across calls).
    coverage_scratch: Vec<f32>,
    rng: StdRng,
    /// Event/metrics recorder; `None` until the owning system installs one.
    obs: Option<ObsHandle>,
}

enum SamplingState {
    Fixed(AcquisitionKind),
    VeSample(VeSample),
}

enum FeatureState {
    Fixed(ExtractorId),
    Bandit {
        bandit: RisingBandit<ExtractorId>,
        /// Last observed CV score per extractor (used to pick the extractor
        /// for predictions before the bandit converges).
        last_scores: Vec<(ExtractorId, f64)>,
    },
}

impl ActiveLearningManager {
    /// Creates an ALM from the system configuration.
    pub fn new(config: VocalExploreConfig) -> Self {
        let sampling = match config.sampling {
            SamplingPolicy::Fixed(kind) => SamplingState::Fixed(kind),
            SamplingPolicy::VeSample(cfg) => SamplingState::VeSample(VeSample::new(cfg)),
        };
        let features = match config.feature_selection {
            FeatureSelectionPolicy::Fixed(e) => FeatureState::Fixed(e),
            FeatureSelectionPolicy::Bandit(cfg) => FeatureState::Bandit {
                bandit: RisingBandit::new(ExtractorId::all().to_vec(), cfg),
                last_scores: Vec::new(),
            },
        };
        let rng = StdRng::seed_from_u64(config.seed ^ 0xA11C_E5ED);
        Self {
            config,
            sampling,
            features,
            index: None,
            prob_cache: ProbabilityCache::new(),
            coverage_scratch: Vec::new(),
            rng,
            obs: None,
        }
    }

    /// Installs the observability recorder. Index ingests and
    /// probability-cache traffic are recorded as deterministic events: both
    /// happen on the session thread during `select_segments`, so their deltas
    /// are pure functions of the session's inputs on either engine.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = Some(obs);
    }

    /// Hit/miss counters of the probability cache (for tests, CI and the
    /// training benchmark).
    pub fn prob_cache_stats(&self) -> ProbCacheStats {
        self.prob_cache.stats()
    }

    /// Diagnostic counters of the persistent acquisition index, once an
    /// active selection has built it.
    pub fn index_stats(&self) -> Option<AcquisitionIndexStats> {
        self.index.as_ref().map(AcquisitionIndex::stats)
    }

    /// Creates an ALM with a specific bandit configuration (used by the
    /// feature-selection experiments).
    pub fn with_bandit(config: VocalExploreConfig, bandit: RisingBanditConfig) -> Self {
        let mut cfg = config;
        cfg.feature_selection = FeatureSelectionPolicy::Bandit(bandit);
        Self::new(cfg)
    }

    /// The acquisition function the next untargeted `Explore` call will use.
    pub fn current_acquisition(&self) -> AcquisitionKind {
        match &self.sampling {
            SamplingState::Fixed(kind) => *kind,
            SamplingState::VeSample(policy) => policy.current(),
        }
    }

    /// Whether `VE-sample` has switched to active learning.
    pub fn has_switched_to_active(&self) -> bool {
        match &self.sampling {
            SamplingState::Fixed(kind) => *kind != AcquisitionKind::Random,
            SamplingState::VeSample(policy) => policy.has_switched(),
        }
    }

    /// Candidate extractors still under consideration.
    pub fn active_extractors(&self) -> Vec<ExtractorId> {
        match &self.features {
            FeatureState::Fixed(e) => vec![*e],
            FeatureState::Bandit { bandit, .. } => bandit.active_arms(),
        }
    }

    /// The extractor the ALM has converged on, if selection finished.
    pub fn selected_extractor(&self) -> Option<ExtractorId> {
        match &self.features {
            FeatureState::Fixed(e) => Some(*e),
            FeatureState::Bandit { bandit, .. } => bandit.selected(),
        }
    }

    /// The extractor used for predictions and active-learning features *right
    /// now*: the selected one once converged, otherwise the alive extractor
    /// with the best smoothed CV score so far (falling back to MViT before
    /// any score exists).
    pub fn current_extractor(&self) -> ExtractorId {
        match &self.features {
            FeatureState::Fixed(e) => *e,
            FeatureState::Bandit {
                bandit,
                last_scores,
            } => {
                if let Some(sel) = bandit.selected() {
                    return sel;
                }
                let alive = bandit.active_arms();
                last_scores
                    .iter()
                    .filter(|(e, _)| alive.contains(e))
                    .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite score"))
                    .map(|(e, _)| *e)
                    .unwrap_or(ExtractorId::Mvit)
            }
        }
    }

    /// Bandit snapshots (bounds per arm) for diagnostics, or `None` when the
    /// feature policy is fixed.
    pub fn bandit_snapshots(&self) -> Option<Vec<ve_bandit::ArmSnapshot<ExtractorId>>> {
        match &self.features {
            FeatureState::Bandit { bandit, .. } => Some(bandit.snapshots()),
            _ => None,
        }
    }

    /// Observes the per-class label counts after a batch and updates the
    /// acquisition policy. Returns the function the *next* batch will use.
    pub fn observe_labels(&mut self, class_counts: &[u64]) -> AcquisitionKind {
        match &mut self.sampling {
            SamplingState::Fixed(kind) => *kind,
            SamplingState::VeSample(policy) => policy.observe(class_counts),
        }
    }

    /// The extractors the next feature-evaluation step would score: the
    /// bandit's live arms, or nothing once it has converged (or the policy is
    /// fixed). The async session engine uses this to spawn one `T_e` task per
    /// candidate on the executor; the synchronous path scores them inline.
    pub fn evaluation_candidates(&self) -> Vec<ExtractorId> {
        match &self.features {
            FeatureState::Fixed(_) => Vec::new(),
            FeatureState::Bandit { bandit, .. } => {
                if bandit.is_converged() {
                    Vec::new()
                } else {
                    bandit.active_arms()
                }
            }
        }
    }

    /// Feeds one round of CV scores (produced by
    /// [`ModelManager::evaluate_cv`], possibly on executor worker threads)
    /// into the rising bandit. Empty score sets are ignored, matching the
    /// synchronous path.
    pub fn observe_feature_scores(&mut self, scores: &[(ExtractorId, f64)]) {
        let FeatureState::Bandit {
            bandit,
            last_scores,
        } = &mut self.features
        else {
            return;
        };
        if scores.is_empty() || bandit.is_converged() {
            return;
        }
        bandit.observe(scores);
        *last_scores = scores.to_vec();
    }

    /// Runs one feature-evaluation step: computes the CV score of every
    /// extractor still alive and feeds the rising bandit. Returns the scores
    /// that were evaluated (one `T_e` task each).
    pub fn feature_evaluation_step(
        &mut self,
        corpus: &VideoCorpus,
        fm: &FeatureManager,
        mm: &ModelManager,
        labels: &[LabelRecord],
    ) -> Vec<(ExtractorId, f64)> {
        let scores: Vec<(ExtractorId, f64)> = self
            .evaluation_candidates()
            .into_iter()
            .filter_map(|extractor| {
                mm.evaluate_cv(extractor, corpus, fm, labels)
                    .map(|score| (extractor, score))
            })
            .collect();
        self.observe_feature_scores(&scores);
        scores
    }

    /// Selects `budget` unlabeled segments of duration `clip_len` for the
    /// user to label, together with selection statistics for latency
    /// accounting.
    ///
    /// * `target_label` — when the user called `Explore(label = a)`, the
    ///   rare-class uncertainty sampler is used for that class.
    ///
    /// Active selections draw their candidates from the persistent
    /// [`AcquisitionIndex`], which tracks every video the feature store
    /// covers for the current extractor (under `VE-full` that is the eagerly
    /// extracted set; under the lazy strategies the ALM extends it by `X`
    /// videos on the spot).
    #[allow(clippy::too_many_arguments)]
    pub fn select_segments(
        &mut self,
        corpus: &VideoCorpus,
        fm: &FeatureManager,
        mm: &ModelManager,
        labels: &LabelStore,
        budget: usize,
        clip_len: f64,
        target_label: Option<ClassId>,
    ) -> (Vec<(VideoId, TimeRange)>, SelectionStats) {
        let acquisition = match target_label {
            Some(_) => AcquisitionKind::Uncertainty,
            None => self.current_acquisition(),
        };
        let cache_before = self.prob_cache.stats();
        let out = match acquisition {
            AcquisitionKind::Random => {
                let picks = self.random_segments(corpus, labels, budget, clip_len);
                (
                    picks,
                    SelectionStats {
                        acquisition,
                        videos_extracted_for_call: 0,
                        extraction_secs: 0.0,
                        candidates_lost: 0,
                        coverage_fallback: false,
                    },
                )
            }
            _ => self.active_segments(
                corpus,
                fm,
                mm,
                labels,
                budget,
                clip_len,
                acquisition,
                target_label,
            ),
        };
        if let Some(obs) = &self.obs {
            let after = self.prob_cache.stats();
            obs.record(SessionEvent::CacheProbe {
                hit_rows: after.hit_rows - cache_before.hit_rows,
                miss_rows: after.miss_rows - cache_before.miss_rows,
                invalidations: after.invalidations - cache_before.invalidations,
            });
        }
        out
    }

    /// Random sampling over unlabeled windows (metadata only, no features).
    fn random_segments(
        &mut self,
        corpus: &VideoCorpus,
        labels: &LabelStore,
        budget: usize,
        clip_len: f64,
    ) -> Vec<(VideoId, TimeRange)> {
        let mut windows = unlabeled_windows(corpus, labels, clip_len);
        windows.shuffle(&mut self.rng);
        windows.truncate(budget);
        windows
    }

    /// Active-learning selection over the persistent acquisition index.
    ///
    /// Instead of re-assembling the candidate set from every pooled video on
    /// each call, the index is synced incrementally: new extractions arrive
    /// through the feature store's change log, freshly labeled windows are
    /// masked in place, and the coreset coverage state absorbs only the Δ new
    /// anchors. The old 2,000-window shuffle-truncate cap is replaced by the
    /// index's deterministic cluster-sketch reduction.
    #[allow(clippy::too_many_arguments)]
    fn active_segments(
        &mut self,
        corpus: &VideoCorpus,
        fm: &FeatureManager,
        mm: &ModelManager,
        labels: &LabelStore,
        budget: usize,
        clip_len: f64,
        acquisition: AcquisitionKind,
        target_label: Option<ClassId>,
    ) -> (Vec<(VideoId, TimeRange)>, SelectionStats) {
        let extractor = self.current_extractor();

        // (Re)build the index when the extractor or clip length changed,
        // then catch it up to the store and label state.
        if !self
            .index
            .as_ref()
            .is_some_and(|ix| ix.matches(extractor, clip_len))
        {
            self.index = Some(AcquisitionIndex::new(
                extractor,
                clip_len,
                self.config.candidate_cap,
            ));
            // A fresh index restarts its epoch counter, so the cached key
            // could collide with it — drop the rows explicitly.
            self.prob_cache.invalidate();
        }
        let rows_before = self
            .index
            .as_ref()
            .expect("index just ensured")
            .stats()
            .rows;
        self.index
            .as_mut()
            .expect("index just ensured")
            .sync(fm, corpus, labels);

        // Lazy extension: when the feature-bearing pool is too small (lazy
        // strategies), extract X more randomly chosen videos on the spot and
        // pull them into this call's candidates. Membership tests hit the
        // index's hash map — O(1) per video instead of the old O(pool) scan.
        let mut extraction_secs = 0.0;
        let mut extracted_videos = 0;
        let mut candidates_lost = 0;
        let desired = budget + self.config.extra_candidates_x;
        if self.index.as_ref().expect("index ensured").video_count() < desired {
            let index = self.index.as_ref().expect("index ensured");
            let missing = desired - index.video_count();
            let mut unexplored: Vec<VideoId> = corpus
                .ids()
                .into_iter()
                .filter(|vid| !index.contains_video(*vid))
                .collect();
            unexplored.shuffle(&mut self.rng);
            for vid in unexplored.into_iter().take(missing) {
                if let Some(clip) = corpus.get(vid) {
                    // A permanently failed extraction leaves the video
                    // `pending` in the index; selection proceeds over the
                    // covered pool and the loss is reported in the stats.
                    match fm.ensure_clip(extractor, clip) {
                        Ok(cost) => {
                            if cost > 0.0 {
                                extracted_videos += 1;
                                extraction_secs += cost;
                            }
                        }
                        Err(_) => candidates_lost += 1,
                    }
                }
            }
            self.index
                .as_mut()
                .expect("index ensured")
                .sync(fm, corpus, labels);
        }

        if let Some(obs) = &self.obs {
            let index = self.index.as_ref().expect("index ensured");
            obs.record(SessionEvent::IndexIngest {
                rows_added: (index.stats().rows - rows_before) as u64,
                epoch: index.epoch(),
            });
        }

        if self.index.as_ref().expect("index ensured").unmasked_rows() == 0 {
            let picks = self.random_segments(corpus, labels, budget, clip_len);
            return (
                picks,
                SelectionStats {
                    acquisition: AcquisitionKind::Random,
                    videos_extracted_for_call: extracted_videos,
                    extraction_secs,
                    candidates_lost,
                    coverage_fallback: false,
                },
            );
        }

        // Graceful degradation: when the batch-probability backend for the
        // current model exhausts its retry budget, probability-based
        // acquisitions fall back to coverage-only (coreset) selection for
        // this call. The gate is consulted *before* choosing between the
        // probability cache and the uncached path, so cache-on/off runs stay
        // bit-identical under faults.
        let mut coverage_fallback = false;
        let acquisition = match acquisition {
            kind @ (AcquisitionKind::ClusterMargin | AcquisitionKind::Uncertainty) => {
                if mm.batch_inference_gate(extractor).is_err() {
                    coverage_fallback = true;
                    AcquisitionKind::Coreset
                } else {
                    kind
                }
            }
            other => other,
        };

        // Coreset coverage must absorb all labels collected so far before
        // the eligible set is frozen (anchor lookups may extract labeled
        // videos on demand; those extractions join the *next* call's
        // candidates via the change log, exactly like the old per-call
        // labeled-block assembly).
        if acquisition == AcquisitionKind::Coreset {
            self.index
                .as_mut()
                .expect("index ensured")
                .sync_anchors(fm, corpus, labels);
        }

        let eligible = self.index.as_mut().expect("index ensured").eligible_rows();
        let index = self.index.as_ref().expect("index ensured");
        let indices: Vec<usize> = match acquisition {
            AcquisitionKind::Coreset => {
                // Scratch coverage: the persistent state tracks labeled
                // anchors only; this call's own greedy picks must not leak
                // into the next iteration. The buffer is reused across calls.
                let mut coverage = std::mem::take(&mut self.coverage_scratch);
                index.coverage_for_call_into(&mut coverage);
                let picks = greedy_k_center(index.block(), &mut coverage, &eligible, budget);
                self.coverage_scratch = coverage;
                picks
            }
            AcquisitionKind::ClusterMargin => {
                let sub = index.block().gather(&eligible);
                let probs = if self.config.prob_cache {
                    self.prob_cache.probs_for(
                        index.block(),
                        index.epoch(),
                        &eligible,
                        mm,
                        extractor,
                    )
                } else {
                    mm.predict_proba_batch(extractor, &sub)
                };
                cluster_margin_selection(&sub, &probs, budget, &ClusterMarginConfig::default())
                    .into_iter()
                    .map(|i| eligible[i])
                    .collect()
            }
            AcquisitionKind::Uncertainty => {
                let class = target_label.expect("uncertainty sampling needs a target label");
                let probs = if self.config.prob_cache {
                    self.prob_cache.probs_for(
                        index.block(),
                        index.epoch(),
                        &eligible,
                        mm,
                        extractor,
                    )
                } else {
                    mm.predict_proba_batch(extractor, &index.block().gather(&eligible))
                };
                let (n_pos, n_neg) = labels.positive_negative_counts(class);
                uncertainty_selection_from_probs(
                    &probs,
                    class,
                    eligible.len(),
                    n_pos,
                    n_neg,
                    budget,
                )
                .into_iter()
                .map(|i| eligible[i])
                .collect()
            }
            // `select_segments` routes Random to `random_segments` before
            // ever reaching the active path.
            AcquisitionKind::Random => {
                unreachable!("random sampling never reaches active_segments")
            }
        };

        let picks = indices.into_iter().map(|i| index.meta_at(i)).collect();
        (
            picks,
            SelectionStats {
                acquisition,
                videos_extracted_for_call: extracted_videos,
                extraction_secs,
                candidates_lost,
                coverage_fallback,
            },
        )
    }
}

/// All unlabeled `(vid, window)` pairs in the corpus.
fn unlabeled_windows(
    corpus: &VideoCorpus,
    labels: &LabelStore,
    clip_len: f64,
) -> Vec<(VideoId, TimeRange)> {
    let mut out = Vec::new();
    for clip in corpus.videos() {
        for w in 0..clip.num_windows(clip_len) {
            let range = TimeRange::new(w as f64 * clip_len, (w + 1) as f64 * clip_len);
            if !labels.is_labeled(clip.id, &range) {
                out.push((clip.id, range));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ve_features::FeatureSimulator;
    use ve_storage::StorageManager;
    use ve_vidsim::{Dataset, DatasetName, GroundTruthOracle, Oracle, TaskKind};

    struct Fixture {
        dataset: Dataset,
        fm: FeatureManager,
        mm: ModelManager,
        labels: LabelStore,
        config: VocalExploreConfig,
    }

    fn fixture(seed: u64) -> Fixture {
        let dataset = Dataset::scaled(DatasetName::Deer, 0.1, seed);
        let sim = FeatureSimulator::new(DatasetName::Deer, 9, seed);
        let fm = FeatureManager::new(sim, StorageManager::new());
        let config = VocalExploreConfig::for_dataset(&dataset, seed).with_extra_candidates(10);
        let mm = ModelManager::new(config.clone());
        Fixture {
            dataset,
            fm,
            mm,
            labels: LabelStore::new(),
            config,
        }
    }

    fn label_some(fx: &mut Fixture, n: usize) {
        let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);
        for clip in fx.dataset.train.videos().iter().take(n) {
            let range = TimeRange::new(0.0, 1.0);
            fx.labels.add(LabelRecord {
                vid: clip.id,
                range,
                classes: oracle.label(&fx.dataset.train, clip.id, &range),
                iteration: 0,
            });
        }
    }

    #[test]
    fn starts_with_random_and_selects_unlabeled_segments() {
        let fx = fixture(1);
        let mut alm = ActiveLearningManager::new(fx.config.clone());
        assert_eq!(alm.current_acquisition(), AcquisitionKind::Random);
        let (picks, stats) =
            alm.select_segments(&fx.dataset.train, &fx.fm, &fx.mm, &fx.labels, 5, 1.0, None);
        assert_eq!(picks.len(), 5);
        assert_eq!(stats.acquisition, AcquisitionKind::Random);
        assert_eq!(
            stats.extraction_secs, 0.0,
            "random sampling needs no features"
        );
        assert!(
            alm.index_stats().is_none(),
            "random sampling must not build the acquisition index"
        );
        // Segments must be unlabeled and distinct.
        let unique: std::collections::HashSet<_> = picks
            .iter()
            .map(|(v, r)| (*v, (r.start * 10.0) as i64))
            .collect();
        assert_eq!(unique.len(), picks.len());
        for (vid, range) in &picks {
            assert!(!fx.labels.is_labeled(*vid, range));
        }
    }

    #[test]
    fn switches_to_active_learning_on_skewed_labels() {
        let fx = fixture(2);
        let mut alm = ActiveLearningManager::new(fx.config.clone());
        // Feed heavily skewed label counts (Deer-like).
        for step in 1..=10u64 {
            alm.observe_labels(&[12 * step, step, 1, 0, 0, 0, 0, 0, 0]);
        }
        assert!(alm.has_switched_to_active());
        assert_eq!(alm.current_acquisition(), AcquisitionKind::ClusterMargin);
    }

    #[test]
    fn active_selection_extracts_extra_candidates_when_pool_is_small() {
        let mut fx = fixture(3);
        // Labels exist but nothing has been extracted yet: the index starts
        // empty and lazy active learning must extract X candidate videos on
        // the spot.
        label_some(&mut fx, 30);
        let mut alm = ActiveLearningManager::new(fx.config.clone().with_sampling(
            crate::config::SamplingPolicy::Fixed(AcquisitionKind::ClusterMargin),
        ));
        let (picks, stats) =
            alm.select_segments(&fx.dataset.train, &fx.fm, &fx.mm, &fx.labels, 5, 1.0, None);
        assert_eq!(picks.len(), 5);
        assert_eq!(stats.acquisition, AcquisitionKind::ClusterMargin);
        assert!(
            stats.videos_extracted_for_call > 0,
            "lazy AL must extract X videos"
        );
        assert!(stats.extraction_secs > 0.0);
        let stats = alm
            .index_stats()
            .expect("active selection builds the index");
        assert_eq!(
            stats.videos,
            5 + fx.config.extra_candidates_x,
            "index covers exactly the lazily extracted pool"
        );
    }

    #[test]
    fn ve_full_pool_avoids_new_extraction() {
        let mut fx = fixture(4);
        label_some(&mut fx, 30);
        // Pre-extract a pool of videos (as eager extraction would).
        let extractor = ExtractorId::Mvit;
        let pool: Vec<VideoId> = fx
            .dataset
            .train
            .videos()
            .iter()
            .skip(30)
            .take(20)
            .map(|c| {
                fx.fm.ensure_clip(extractor, c).unwrap();
                c.id
            })
            .collect();
        let mut cfg = fx.config.clone();
        cfg.extra_candidates_x = 0;
        let mut alm = ActiveLearningManager::new(
            cfg.with_sampling(crate::config::SamplingPolicy::Fixed(
                AcquisitionKind::Coreset,
            ))
            .with_feature_selection(crate::config::FeatureSelectionPolicy::Fixed(extractor)),
        );
        let (picks, stats) =
            alm.select_segments(&fx.dataset.train, &fx.fm, &fx.mm, &fx.labels, 5, 1.0, None);
        assert_eq!(picks.len(), 5);
        assert_eq!(stats.videos_extracted_for_call, 0);
        assert_eq!(stats.extraction_secs, 0.0);
        // Picks must come from the eagerly covered pool (the only videos the
        // acquisition index has ingested).
        for (vid, _) in &picks {
            assert!(pool.contains(vid));
        }
    }

    #[test]
    fn feature_evaluation_feeds_the_bandit_and_converges() {
        let mut fx = fixture(5);
        label_some(&mut fx, 80);
        let mut alm = ActiveLearningManager::new(fx.config.clone());
        assert_eq!(alm.active_extractors().len(), 5);
        // Run enough evaluation steps for warm-up plus elimination.
        let mut converged_at = None;
        for step in 0..60 {
            let scores =
                alm.feature_evaluation_step(&fx.dataset.train, &fx.fm, &fx.mm, fx.labels.records());
            if step == 0 {
                assert_eq!(scores.len(), 5, "all extractors evaluated initially");
            }
            if alm.selected_extractor().is_some() {
                converged_at = Some(step);
                break;
            }
        }
        let selected = alm.selected_extractor().expect("bandit should converge");
        assert!(
            matches!(selected, ExtractorId::R3d | ExtractorId::Mvit),
            "Deer should select a video model, got {selected}"
        );
        assert!(converged_at.unwrap() <= 50);
        assert_eq!(alm.current_extractor(), selected);
    }

    #[test]
    fn targeted_explore_uses_uncertainty_sampling() {
        let mut fx = fixture(6);
        label_some(&mut fx, 30);
        fx.mm
            .train(
                ExtractorId::Mvit,
                &fx.dataset.train,
                &fx.fm,
                fx.labels.records(),
                0,
                None,
            )
            .unwrap();
        let mut alm = ActiveLearningManager::new(fx.config.clone());
        let (picks, stats) = alm.select_segments(
            &fx.dataset.train,
            &fx.fm,
            &fx.mm,
            &fx.labels,
            5,
            1.0,
            Some(2),
        );
        assert_eq!(stats.acquisition, AcquisitionKind::Uncertainty);
        assert_eq!(picks.len(), 5);
    }

    #[test]
    fn fixed_feature_policy_reports_single_extractor() {
        let fx = fixture(7);
        let alm = ActiveLearningManager::new(fx.config.clone().with_feature_selection(
            crate::config::FeatureSelectionPolicy::Fixed(ExtractorId::Clip),
        ));
        assert_eq!(alm.active_extractors(), vec![ExtractorId::Clip]);
        assert_eq!(alm.selected_extractor(), Some(ExtractorId::Clip));
        assert_eq!(alm.current_extractor(), ExtractorId::Clip);
        assert!(alm.bandit_snapshots().is_none());
    }
}
