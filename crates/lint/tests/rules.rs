//! Fixture tests: every rule must demonstrably fire on a minimal violation
//! and stay silent on the documented exemptions — suppression annotations,
//! exempt crates, blessed files, `#[cfg(test)]` code, and the baseline.
//!
//! Fixtures are built straight from source text via `SourceFile::from_source`
//! (the analysis is lexical, so fixtures need not compile), assembled into a
//! `WorkspaceModel`, and pushed through the same `analyze` entry point the
//! CLI uses.

use std::path::Path;
use ve_lint::workspace::load_workspace;
use ve_lint::{
    analyze, parse_baseline, render_baseline, BaselineEntry, Report, SourceFile, WorkspaceModel,
};

/// Builds a workspace model from `(crate_name, rel_path, source)` fixtures.
fn ws(files: &[(&str, &str, &str)]) -> WorkspaceModel {
    WorkspaceModel {
        files: files
            .iter()
            .map(|(c, p, s)| SourceFile::from_source(c, p, s))
            .collect(),
    }
}

/// Analyzes fixtures with an empty baseline.
fn run(files: &[(&str, &str, &str)]) -> Report {
    analyze(&ws(files), &[])
}

/// The rule names of the active findings, in report order.
fn active_rules(report: &Report) -> Vec<&str> {
    report.active.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- iteration

#[test]
fn iteration_fires_on_hashmap_field_keys() {
    let src = "struct S { index: std::collections::HashMap<u64, u64> }\n\
               impl S {\n\
                   fn bad(&self) -> Vec<u64> {\n\
                       self.index.keys().copied().collect()\n\
                   }\n\
               }\n";
    let report = run(&[("ve-al", "crates/al/src/fx.rs", src)]);
    assert_eq!(active_rules(&report), ["nondeterministic-iteration"]);
    assert_eq!(report.active[0].line, 4);
}

#[test]
fn iteration_fires_on_let_binding_for_loop() {
    let src = "fn bad() {\n\
                   let mut seen = std::collections::HashMap::new();\n\
                   seen.insert(1u64, 2u64);\n\
                   for (k, v) in &seen {\n\
                       use_it(k, v);\n\
                   }\n\
               }\n";
    let report = run(&[("ve-storage", "crates/storage/src/fx.rs", src)]);
    assert_eq!(active_rules(&report), ["nondeterministic-iteration"]);
}

#[test]
fn iteration_fires_on_reference_param_binding() {
    let src = "pub fn bad(m: &std::collections::HashMap<u64, f64>) -> Vec<u64> {\n\
                   m.keys().copied().collect()\n\
               }\n";
    let report = run(&[("ve-al", "crates/al/src/fx.rs", src)]);
    assert_eq!(active_rules(&report), ["nondeterministic-iteration"]);
}

#[test]
fn iteration_fires_on_map_returning_fn_call_site() {
    let src = "fn windows() -> std::collections::HashMap<u64, u64> {\n\
                   make()\n\
               }\n\
               fn bad() -> usize {\n\
                   windows().iter().count()\n\
               }\n";
    let report = run(&[("ve-ml", "crates/ml/src/fx.rs", src)]);
    assert_eq!(active_rules(&report), ["nondeterministic-iteration"]);
    assert_eq!(report.active[0].line, 5);
}

#[test]
fn iteration_passes_through_lock_guards() {
    let src = "struct M { warm: Mutex<std::collections::HashMap<u64, u64>> }\n\
               impl M {\n\
                   fn bad(&self) -> Vec<u64> {\n\
                       self.warm.lock().keys().copied().collect()\n\
                   }\n\
               }\n";
    let report = run(&[("vocalexplore", "src/fx.rs", src)]);
    assert_eq!(active_rules(&report), ["nondeterministic-iteration"]);
}

#[test]
fn iteration_silent_when_statement_sorts_or_collects_ordered() {
    let src = "struct S { index: std::collections::HashMap<u64, u64> }\n\
               impl S {\n\
                   fn sorted(&self) -> std::collections::BTreeMap<u64, u64> {\n\
                       self.index.iter().map(|(k, v)| (*k, *v)).collect::<std::collections::BTreeMap<_, _>>()\n\
                   }\n\
                   fn sorted_after(&self) -> Vec<u64> {\n\
                       let mut keys: Vec<u64> = self.index.keys().copied().collect();\n\
                       keys.sort();\n\
                       keys\n\
                   }\n\
               }\n";
    let report = run(&[("ve-al", "crates/al/src/fx.rs", src)]);
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn iteration_silent_outside_determinism_critical_crates() {
    let src = "struct S { index: std::collections::HashMap<u64, u64> }\n\
               impl S {\n\
                   fn fine(&self) -> Vec<u64> {\n\
                       self.index.keys().copied().collect()\n\
                   }\n\
               }\n";
    let report = run(&[("ve-features", "crates/features/src/fx.rs", src)]);
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn iteration_silent_in_cfg_test_code() {
    let src = "fn live() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   fn t() {\n\
                       let m = std::collections::HashMap::new();\n\
                       for (k, v) in &m {\n\
                           check(k, v);\n\
                       }\n\
                   }\n\
               }\n";
    let report = run(&[("ve-al", "crates/al/src/fx.rs", src)]);
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn test_declared_bindings_do_not_taint_production_code() {
    // A HashSet binding named `clusters` declared in test code must not make
    // production uses of an unrelated Vec named `clusters` match the rule.
    let src = "fn live(clusters: &[Vec<usize>]) -> usize {\n\
                   clusters.iter().map(|c| c.len()).sum::<usize>()\n\
               }\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   fn t() {\n\
                       let clusters: std::collections::HashSet<usize> = make();\n\
                   }\n\
               }\n";
    let report = run(&[("ve-al", "crates/al/src/fx.rs", src)]);
    assert!(report.is_clean(), "{}", report.render_human());
}

// -------------------------------------------------------------- suppression

#[test]
fn suppression_on_preceding_line_silences() {
    let src = "struct S { index: std::collections::HashMap<u64, u64> }\n\
               impl S {\n\
                   fn counted(&self) -> usize {\n\
                       // ve-lint: allow(nondeterministic-iteration) -- count is order-insensitive\n\
                       self.index.values().count()\n\
                   }\n\
               }\n";
    let report = run(&[("ve-al", "crates/al/src/fx.rs", src)]);
    assert!(report.is_clean(), "{}", report.render_human());
    assert_eq!(report.suppressed, 1);
}

#[test]
fn suppression_trailing_on_same_line_silences() {
    let src = "struct S { index: std::collections::HashMap<u64, u64> }\n\
               impl S {\n\
                   fn counted(&self) -> usize {\n\
                       self.index.values().count() // ve-lint: allow(nondeterministic-iteration) -- count is order-insensitive\n\
                   }\n\
               }\n";
    let report = run(&[("ve-al", "crates/al/src/fx.rs", src)]);
    assert!(report.is_clean(), "{}", report.render_human());
    assert_eq!(report.suppressed, 1);
}

#[test]
fn suppression_for_the_wrong_rule_does_not_silence() {
    let src = "struct S { index: std::collections::HashMap<u64, u64> }\n\
               impl S {\n\
                   fn counted(&self) -> usize {\n\
                       // ve-lint: allow(wall-clock-in-logic) -- wrong rule\n\
                       self.index.values().count()\n\
                   }\n\
               }\n";
    let report = run(&[("ve-al", "crates/al/src/fx.rs", src)]);
    assert_eq!(active_rules(&report), ["nondeterministic-iteration"]);
}

#[test]
fn suppression_without_reason_is_malformed_and_does_not_silence() {
    let src = "fn bad(xs: &[f64]) -> f64 {\n\
                   // ve-lint: allow(float-reduction-order)\n\
                   xs.iter().sum::<f64>()\n\
               }\n";
    let report = run(&[("ve-ml", "crates/ml/src/fx.rs", src)]);
    let mut rules = active_rules(&report);
    rules.sort_unstable();
    assert_eq!(rules, ["float-reduction-order", "malformed-suppression"]);
}

#[test]
fn suppression_naming_unknown_rule_is_malformed() {
    let src = "fn fine() {} // ve-lint: allow(made-up-rule) -- because\n";
    let report = run(&[("ve-al", "crates/al/src/fx.rs", src)]);
    assert_eq!(active_rules(&report), ["malformed-suppression"]);
    assert!(report.active[0].message.contains("made-up-rule"));
}

#[test]
fn doc_comments_describing_the_syntax_are_not_annotations() {
    let src = "/// Write `ve-lint: allow(rule)` to suppress — this doc line is prose.\n\
               //! ve-lint: allow(also-prose)\n\
               fn fine() {}\n";
    let report = run(&[("ve-al", "crates/al/src/fx.rs", src)]);
    assert!(report.is_clean(), "{}", report.render_human());
}

// --------------------------------------------------------------- wall clock

#[test]
fn wall_clock_fires_outside_exempt_crates() {
    let src = "fn decide() -> bool {\n\
                   std::time::Instant::now().elapsed().as_secs() > 1\n\
               }\n";
    let report = run(&[("ve-ml", "crates/ml/src/fx.rs", src)]);
    assert_eq!(active_rules(&report), ["wall-clock-in-logic"]);
    assert!(report.active[0].message.contains("Instant::now"));
}

#[test]
fn wall_clock_silent_in_sched_and_bench() {
    let src = "fn measure() -> std::time::Instant {\n\
                   std::time::Instant::now()\n\
               }\n\
               fn stamp() -> std::time::SystemTime {\n\
                   std::time::SystemTime::now()\n\
               }\n";
    for c in ["ve-sched", "ve-bench"] {
        let report = run(&[(c, "crates/x/src/fx.rs", src)]);
        assert!(report.is_clean(), "{c}: {}", report.render_human());
    }
}

#[test]
fn wall_clock_fires_in_obs_event_plane_files() {
    // The ve-obs event plane must stay wall-clock-free: event content and
    // order are part of the determinism contract. Only the timing plane
    // (timing.rs) may read the clock.
    let src = "pub fn record_stamp() -> u64 {\n\
                   std::time::Instant::now().elapsed().as_micros() as u64\n\
               }\n";
    let report = run(&[("ve-obs", "crates/obs/src/event.rs", src)]);
    assert_eq!(active_rules(&report), ["wall-clock-in-logic"]);
    assert!(report.active[0].message.contains("Instant::now"));
}

#[test]
fn wall_clock_silent_in_obs_timing_plane_file() {
    // Identical source, but in the sanctioned timing-plane file.
    let src = "pub fn record_stamp() -> u64 {\n\
                   std::time::Instant::now().elapsed().as_micros() as u64\n\
               }\n";
    let report = run(&[("ve-obs", "crates/obs/src/timing.rs", src)]);
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn wall_clock_fires_in_report_crate() {
    // ve-report is a gate over *recorded* artifacts; it must never time
    // anything itself, so it is deliberately absent from the exempt list.
    let src = "pub fn stamp() -> u64 {\n\
                   std::time::Instant::now().elapsed().as_micros() as u64\n\
               }\n";
    let report = run(&[("ve-report", "crates/report/src/lib.rs", src)]);
    assert_eq!(active_rules(&report), ["wall-clock-in-logic"]);
    assert!(report.active[0].message.contains("Instant::now"));
}

#[test]
fn wall_clock_suppressible_with_reason() {
    let src = "fn timer() -> std::time::Instant {\n\
                   // ve-lint: allow(wall-clock-in-logic) -- measurement is the product here\n\
                   std::time::Instant::now()\n\
               }\n";
    let report = run(&[("vocalexplore", "src/fx.rs", src)]);
    assert!(report.is_clean(), "{}", report.render_human());
    assert_eq!(report.suppressed, 1);
}

// --------------------------------------------------------------- panic path

#[test]
fn panic_path_fires_on_unwrap_in_submitted_closure() {
    let src = "fn go(ex: &Executor) {\n\
                   ex.submit(Priority::Normal, move || {\n\
                       let v = compute().unwrap();\n\
                       store(v);\n\
                   });\n\
               }\n";
    let report = run(&[("vocalexplore", "src/fx.rs", src)]);
    assert_eq!(active_rules(&report), ["panic-in-task-path"]);
    assert_eq!(report.active[0].line, 3);
    assert!(report.active[0].message.contains(".unwrap()"));
}

#[test]
fn panic_path_follows_calls_out_of_the_closure() {
    let src = "fn helper(x: Option<u64>) -> u64 {\n\
                   x.expect(\"x must be set\")\n\
               }\n\
               fn go(ex: &Executor) {\n\
                   ex.submit_with_handle(Priority::Normal, move || helper(input()));\n\
               }\n";
    let report = run(&[("vocalexplore", "src/fx.rs", src)]);
    assert_eq!(active_rules(&report), ["panic-in-task-path"]);
    assert_eq!(report.active[0].line, 2, "marker is at the callee's expect");
    assert!(
        report.active[0].message.contains("via `helper`"),
        "message names the call chain: {}",
        report.active[0].message
    );
}

#[test]
fn panic_path_flags_slice_indexing_in_direct_closure() {
    let src = "fn go(ex: &Executor, xs: Vec<f64>) {\n\
                   ex.submit(Priority::Normal, move || {\n\
                       let first = xs[0];\n\
                       store(first);\n\
                   });\n\
               }\n";
    let report = run(&[("vocalexplore", "src/fx.rs", src)]);
    assert_eq!(active_rules(&report), ["panic-in-task-path"]);
    assert!(report.active[0].message.contains("slice indexing"));
}

#[test]
fn panic_path_fires_on_panic_macro() {
    let src = "fn go(ex: &Executor) {\n\
                   ex.submit(Priority::Normal, || panic!(\"boom\"));\n\
               }\n";
    let report = run(&[("vocalexplore", "src/fx.rs", src)]);
    assert_eq!(active_rules(&report), ["panic-in-task-path"]);
    assert!(report.active[0].message.contains("`panic!`"));
}

#[test]
fn panic_path_silent_for_panic_free_closure_and_test_code() {
    let src = "fn go(ex: &Executor) {\n\
                   ex.submit(Priority::Normal, move || {\n\
                       if let Some(v) = compute() {\n\
                           store(v);\n\
                       }\n\
                   });\n\
               }\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   fn t(ex: &Executor) {\n\
                       ex.submit(Priority::Normal, || panic!(\"fine in tests\"));\n\
                   }\n\
               }\n";
    let report = run(&[("vocalexplore", "src/fx.rs", src)]);
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn panic_path_suppressible_at_the_marker_line() {
    let src = "fn go(ex: &Executor) {\n\
                   ex.submit(Priority::Normal, move || {\n\
                       // ve-lint: allow(panic-in-task-path) -- invariant: compute is total here\n\
                       let v = compute().unwrap();\n\
                       store(v);\n\
                   });\n\
               }\n";
    let report = run(&[("vocalexplore", "src/fx.rs", src)]);
    assert!(report.is_clean(), "{}", report.render_human());
    assert_eq!(report.suppressed, 1);
}

// ------------------------------------------------------------ lock discipline

#[test]
fn lock_discipline_fires_on_recursive_acquisition() {
    let src = "impl M {\n\
                   fn bad(&self) {\n\
                       let a = self.warm.lock();\n\
                       let b = self.warm.lock();\n\
                       use_both(a, b);\n\
                   }\n\
               }\n";
    let report = run(&[("vocalexplore", "src/fx.rs", src)]);
    assert_eq!(active_rules(&report), ["lock-discipline"]);
    assert!(report.active[0].message.contains("re-acquisition"));
}

#[test]
fn lock_discipline_knows_the_report_findings_lock() {
    // The sentinel's findings log is registered as `report.findings`, so
    // misuse inside ve-report is caught like any other tracked lock.
    let src = "impl Sentinel {\n\
                   fn bad(&self) {\n\
                       let a = self.findings.lock();\n\
                       let b = self.findings.lock();\n\
                       use_both(a, b);\n\
                   }\n\
               }\n";
    let report = run(&[("ve-report", "crates/report/src/lib.rs", src)]);
    assert_eq!(active_rules(&report), ["lock-discipline"]);
    assert!(report.active[0].message.contains("report.findings"));
}

#[test]
fn lock_discipline_fires_on_wait_while_holding_unrelated_lock() {
    let src = "impl M {\n\
                   fn bad(&self) {\n\
                       let g = self.stats.lock();\n\
                       self.handle.join();\n\
                       use_it(g);\n\
                   }\n\
               }\n";
    let report = run(&[("vocalexplore", "src/fx.rs", src)]);
    assert_eq!(active_rules(&report), ["lock-discipline"]);
    assert!(report.active[0].message.contains("blocking `.join(…)`"));
}

#[test]
fn lock_discipline_exempts_condvar_wait_on_its_own_guard() {
    let src = "impl Executor {\n\
                   fn wait_loop(&self) {\n\
                       let mut g = self.state.lock();\n\
                       while !g.done {\n\
                           self.cv.wait(&mut g);\n\
                       }\n\
                   }\n\
               }\n";
    let report = run(&[("ve-sched", "crates/sched/src/fx.rs", src)]);
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn lock_discipline_drop_releases_the_guard() {
    let src = "impl M {\n\
                   fn fine(&self) {\n\
                       let g = self.warm.lock();\n\
                       use_it(&g);\n\
                       drop(g);\n\
                       let h = self.warm.lock();\n\
                       use_it(&h);\n\
                   }\n\
               }\n";
    let report = run(&[("vocalexplore", "src/fx.rs", src)]);
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn lock_discipline_string_join_is_not_a_wait() {
    let src = "impl M {\n\
                   fn fine(&self, parts: &[String]) -> String {\n\
                       let g = self.warm.lock();\n\
                       let s = parts.join(\", \");\n\
                       format_it(&g, s)\n\
                   }\n\
               }\n";
    let report = run(&[("vocalexplore", "src/fx.rs", src)]);
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn lock_discipline_detects_order_cycles() {
    let src = "impl M {\n\
                   fn a(&self) {\n\
                       let x = self.warm.lock();\n\
                       let y = self.stats.lock();\n\
                       use_both(x, y);\n\
                   }\n\
               }\n\
               impl M {\n\
                   fn b(&self) {\n\
                       let y = self.stats.lock();\n\
                       let x = self.warm.lock();\n\
                       use_both(x, y);\n\
                   }\n\
               }\n";
    let report = run(&[("vocalexplore", "src/fx.rs", src)]);
    assert_eq!(active_rules(&report), ["lock-discipline"]);
    let msg = &report.active[0].message;
    assert!(
        msg.contains("lock-order cycle") && msg.contains("mm.warm") && msg.contains("mm.stats"),
        "cycle names both classes: {msg}"
    );
}

#[test]
fn lock_discipline_consistent_order_is_clean() {
    let src = "impl M {\n\
                   fn a(&self) {\n\
                       let x = self.warm.lock();\n\
                       let y = self.stats.lock();\n\
                       use_both(x, y);\n\
                   }\n\
                   fn b(&self) {\n\
                       let x = self.warm.lock();\n\
                       let y = self.stats.lock();\n\
                       use_both(x, y);\n\
                   }\n\
               }\n";
    let report = run(&[("vocalexplore", "src/fx.rs", src)]);
    assert!(report.is_clean(), "{}", report.render_human());
}

// ------------------------------------------------------------- float order

#[test]
fn float_order_fires_on_untyped_sum() {
    let src = "fn total(xs: &[f64]) -> f64 {\n\
                   xs.iter().sum()\n\
               }\n";
    let report = run(&[("ve-ml", "crates/ml/src/fx.rs", src)]);
    assert_eq!(active_rules(&report), ["float-reduction-order"]);
    assert!(report.active[0].message.contains("untyped"));
}

#[test]
fn float_order_fires_on_float_turbofish_and_float_fold() {
    let src = "fn total(xs: &[f64]) -> f64 {\n\
                   xs.iter().sum::<f64>()\n\
               }\n\
               fn folded(xs: &[f32]) -> f32 {\n\
                   xs.iter().fold(0.0, |a, b| a + b)\n\
               }\n";
    let report = run(&[("ve-al", "crates/al/src/fx.rs", src)]);
    assert_eq!(
        active_rules(&report),
        ["float-reduction-order", "float-reduction-order"]
    );
}

#[test]
fn float_order_integer_reductions_pass() {
    let src = "fn count(xs: &[Vec<u8>]) -> usize {\n\
                   xs.iter().map(|v| v.len()).sum::<usize>()\n\
               }\n\
               fn folded(xs: &[usize]) -> usize {\n\
                   xs.iter().fold(0usize, |a, b| a + b)\n\
               }\n\
               fn bits(xs: &[u64]) -> u64 {\n\
                   xs.iter().copied().fold(0, |a, b| a | b)\n\
               }\n";
    let report = run(&[("ve-ml", "crates/ml/src/fx.rs", src)]);
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn float_order_non_literal_fold_accumulator_must_be_annotated() {
    let src = "fn folded(xs: &[f64], init: f64) -> f64 {\n\
                   xs.iter().fold(init, |a, b| a + b)\n\
               }\n";
    let report = run(&[("ve-ml", "crates/ml/src/fx.rs", src)]);
    assert_eq!(active_rules(&report), ["float-reduction-order"]);
    assert!(report.active[0].message.contains("non-literal accumulator"));
}

#[test]
fn float_order_blessed_kernel_files_are_exempt() {
    let src = "fn kernel(xs: &[f32]) -> f32 {\n\
                   xs.iter().sum::<f32>()\n\
               }\n";
    let report = run(&[("ve-ml", "crates/ml/src/block.rs", src)]);
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn float_order_silent_outside_determinism_critical_crates() {
    let src = "fn total(xs: &[f64]) -> f64 {\n\
                   xs.iter().sum()\n\
               }\n";
    let report = run(&[("ve-bench", "crates/bench/src/fx.rs", src)]);
    assert!(report.is_clean(), "{}", report.render_human());
}

// ---------------------------------------------------------- executor bypass

#[test]
fn executor_bypass_fires_on_raw_spawn_and_builder() {
    let src = "fn go() {\n\
                   std::thread::spawn(|| work());\n\
                   let b = std::thread::Builder::new();\n\
               }\n";
    let report = run(&[("ve-storage", "crates/storage/src/fx.rs", src)]);
    assert_eq!(
        active_rules(&report),
        ["executor-bypass", "executor-bypass"]
    );
}

#[test]
fn executor_bypass_silent_in_sched_and_in_tests() {
    let sched = "fn worker() {\n\
                     std::thread::spawn(|| run());\n\
                 }\n";
    let report = run(&[("ve-sched", "crates/sched/src/fx.rs", sched)]);
    assert!(report.is_clean(), "{}", report.render_human());

    let tests_only = "fn live() {}\n\
                      #[cfg(test)]\n\
                      mod tests {\n\
                          fn t() {\n\
                              std::thread::spawn(|| hammer());\n\
                          }\n\
                      }\n";
    let report = run(&[("ve-storage", "crates/storage/src/fx.rs", tests_only)]);
    assert!(report.is_clean(), "{}", report.render_human());
}

// ----------------------------------------------------------------- baseline

#[test]
fn baseline_grandfathers_matching_findings() {
    let src = "fn total(xs: &[f64]) -> f64 {\n\
                   xs.iter().sum::<f64>()\n\
               }\n";
    let baseline = vec![BaselineEntry {
        rule: "float-reduction-order".to_string(),
        path: "crates/ml/src/fx.rs".to_string(),
        snippet: "xs.iter().sum::<f64>()".to_string(),
    }];
    let report = analyze(&ws(&[("ve-ml", "crates/ml/src/fx.rs", src)]), &baseline);
    assert!(report.is_clean(), "{}", report.render_human());
    assert_eq!(report.grandfathered, 1);
}

#[test]
fn one_baseline_entry_covers_repeated_identical_lines() {
    let src = "fn a(xs: &[f64]) -> f64 {\n\
                   xs.iter().sum::<f64>()\n\
               }\n\
               fn b(xs: &[f64]) -> f64 {\n\
                   xs.iter().sum::<f64>()\n\
               }\n";
    let baseline = vec![BaselineEntry {
        rule: "float-reduction-order".to_string(),
        path: "crates/ml/src/fx.rs".to_string(),
        snippet: "xs.iter().sum::<f64>()".to_string(),
    }];
    let report = analyze(&ws(&[("ve-ml", "crates/ml/src/fx.rs", src)]), &baseline);
    assert!(report.is_clean(), "{}", report.render_human());
    assert_eq!(report.grandfathered, 2);
}

#[test]
fn stale_baseline_entries_fail_the_gate() {
    let src = "fn fine() {}\n";
    let baseline = vec![BaselineEntry {
        rule: "float-reduction-order".to_string(),
        path: "crates/ml/src/fx.rs".to_string(),
        snippet: "this line was fixed and no longer exists".to_string(),
    }];
    let report = analyze(&ws(&[("ve-ml", "crates/ml/src/fx.rs", src)]), &baseline);
    assert!(!report.is_clean());
    assert_eq!(report.stale_baseline.len(), 1);
    assert!(report.render_human().contains("stale-baseline"));
}

#[test]
fn baseline_round_trips_through_render_and_parse() {
    let src = "fn total(xs: &[f64]) -> f64 {\n\
                   xs.iter().sum::<f64>()\n\
               }\n";
    let model = ws(&[("ve-ml", "crates/ml/src/fx.rs", src)]);
    let findings = ve_lint::unsuppressed_findings(&model);
    assert_eq!(findings.len(), 1);
    let rendered = render_baseline(&findings);
    let parsed = parse_baseline(&rendered).expect("rendered baseline parses");
    let report = analyze(&model, &parsed);
    assert!(report.is_clean(), "{}", report.render_human());
    assert_eq!(report.grandfathered, 1);
}

#[test]
fn malformed_suppressions_cannot_be_baselined() {
    let src = "fn fine() {} // ve-lint: allow(float-reduction-order)\n";
    let baseline = vec![BaselineEntry {
        rule: "malformed-suppression".to_string(),
        path: "crates/ml/src/fx.rs".to_string(),
        snippet: "fn fine() {} // ve-lint: allow(float-reduction-order)".to_string(),
    }];
    let report = analyze(&ws(&[("ve-ml", "crates/ml/src/fx.rs", src)]), &baseline);
    // The malformed finding stays active AND the entry it "matches" is stale:
    // the baseline cannot launder annotation-grammar errors.
    assert_eq!(active_rules(&report), ["malformed-suppression"]);
    assert_eq!(report.stale_baseline.len(), 1);
}

#[test]
fn garbled_baseline_is_a_parse_error() {
    assert!(parse_baseline("not a tab separated line\n").is_err());
    assert!(parse_baseline("# comment\n\nrule\tpath\tsnippet\n").is_ok());
}

// ------------------------------------------------------------------ output

#[test]
fn json_output_escapes_and_carries_counts() {
    let src = "fn total(xs: &[f64]) -> f64 {\n\
                   xs.iter().fold(0.0, |a, b| a + \"q\\\"uote\".len() as f64 + b)\n\
               }\n";
    let report = run(&[("ve-ml", "crates/ml/src/fx.rs", src)]);
    let json = report.render_json();
    assert!(json.contains("\"rule\": \"float-reduction-order\""));
    assert!(json.contains("\\\""), "quotes in snippets are escaped");
    assert!(json.contains("\"files_scanned\": 1"));
}

// ---------------------------------------------------------- the real gate

/// The repository must pass its own gate: this is the same analysis the CI
/// step runs, so plain `cargo test` catches a regression even before CI.
#[test]
fn repository_passes_its_own_gate() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let model = load_workspace(&root).expect("workspace loads");
    assert!(
        model.files.len() > 50,
        "workspace discovery found the crates"
    );
    let baseline_text = std::fs::read_to_string(root.join("ve-lint.baseline")).unwrap_or_default();
    let baseline = parse_baseline(&baseline_text).expect("committed baseline parses");
    let report = analyze(&model, &baseline);
    assert!(
        report.is_clean(),
        "ve-lint gate failed on the repository itself:\n{}",
        report.render_human()
    );
}
