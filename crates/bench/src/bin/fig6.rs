//! Figure 6 — rising-bandit bound evolution on K20.
//!
//! Drives one exploration session on K20 with the rising bandit (`T = 50`,
//! `C = 5`, `w = 5`) and prints, at every iteration, the lower and upper
//! bounds of each candidate extractor until the bandit converges — the data
//! behind the paper's bound-evolution plot.
//!
//! ```text
//! cargo run --release -p ve-bench --bin fig6 [-- --full]
//! ```

use ve_bench::Profile;
use vocalexplore::prelude::*;
use vocalexplore::{FeatureSelectionPolicy, VocalExplore};

fn main() {
    let profile = Profile::from_args();
    let dataset_name = DatasetName::K20;
    println!("Figure 6: rising-bandit bounds on {dataset_name} (T = 50, C = 5, w = 5)\n");

    let session = {
        let mut cfg = profile.session(dataset_name, 17);
        cfg.system = cfg
            .system
            .with_feature_selection(FeatureSelectionPolicy::Bandit(RisingBanditConfig::default()));
        cfg
    };
    let dataset = Dataset::scaled(dataset_name, session.scale, session.seed);
    let mut system = VocalExplore::new(session.system.clone());
    for clip in dataset.train.videos() {
        system.add_video(clip.clone());
    }
    let oracle = GroundTruthOracle::new(dataset.spec.task);

    // Header: one (lower, upper) column pair per extractor.
    print!("{:>5}", "iter");
    for e in ExtractorId::all() {
        print!("  | {:>22}", format!("{e} (lower / upper)"));
    }
    println!();

    for iteration in 1..=session.iterations {
        let batch = system.explore(session.batch_size, session.clip_len, None);
        for seg in &batch.segments {
            let classes = oracle.label(&dataset.train, seg.vid, &seg.range);
            system.add_label(seg.vid, seg.range, classes);
        }
        let Some(snapshots) = system.alm().bandit_snapshots() else {
            break;
        };
        print!("{:>5}", iteration);
        for snap in &snapshots {
            let cell = if !snap.alive {
                format!("eliminated@{}", snap.eliminated_at.unwrap_or(0))
            } else {
                match (snap.lower_bound, snap.upper_bound) {
                    (Some(l), Some(u)) if u.is_finite() => format!("{l:.3} / {u:.3}"),
                    (Some(l), _) => format!("{l:.3} / inf"),
                    _ => "warming up".to_string(),
                }
            };
            print!("  | {cell:>22}");
        }
        println!();
        if let Some(selected) = system.alm().selected_extractor() {
            println!(
                "\nConverged to {selected} at iteration {iteration} \
                 ({} labels).",
                system.label_count()
            );
            break;
        }
    }
    println!(
        "\nExpected shape: the Random arm's upper bound collapses quickly; the weakest pretrained\n\
         arms follow; the surviving arms' bounds tighten until a single extractor remains."
    );
}
