//! Average-linkage hierarchical agglomerative clustering (HAC).
//!
//! The original Cluster-Margin algorithm (Citovsky et al., 2021) clusters the
//! unlabeled pool once with HAC and reuses the clustering across rounds. The
//! default [`crate::cluster_margin_selection`] uses a small k-means for speed,
//! but HAC is provided as an alternative diversity stage
//! ([`crate::cluster_margin::ClusterMarginConfig`] + [`cluster_margin_selection_hac`])
//! for workloads where fidelity to the original algorithm is preferred.
//!
//! # Algorithm
//!
//! Average linkage over squared Euclidean distances satisfies the
//! Lance–Williams recurrence: when clusters `i` and `j` (sizes `nᵢ`, `nⱼ`)
//! merge, the distance from the union to any other cluster `k` is the
//! size-weighted mean
//!
//! ```text
//! d(i ∪ j, k) = (nᵢ · d(i, k) + nⱼ · d(j, k)) / (nᵢ + nⱼ)
//! ```
//!
//! so the distance matrix (built once with the blocked
//! [`FeatureBlock::pairwise_sq_distances`] kernel) can be *maintained* in
//! O(n) per merge instead of recomputed from member pairs — the seed
//! implementation's recompute-everything scan was O(n³) distance evaluations
//! per run (O(n⁴) with the per-pair member loops). Cached per-row minima
//! bring the closest-pair search down to O(n) per merge in the common case,
//! for O(n²) total work after the matrix build.
//!
//! # Memory layout
//!
//! The matrix is symmetric with a zero diagonal, so [`hac_average_linkage`]
//! stores only the upper triangle, condensed into one `f32` buffer of
//! `n·(n−1)/2` entries — 2 bytes/pair steady state versus the previous full
//! square `f64` matrix's 8 bytes/pair (recurrence arithmetic stays in `f64`;
//! only storage is rounded). The previous representation is kept as
//! [`hac_average_linkage_dense`], the memory-heavy reference the equivalence
//! tests pin the condensed implementation against (bit-identical cluster
//! assignments at n = 1,000 on the benchmark-shaped input).
//!
//! # Determinism
//!
//! Exact ties are broken toward the lexicographically first `(i, j)` cluster
//! pair, matching a naive full scan in ascending index order.

use crate::cluster_margin::{margins_of, round_robin, ClusterMarginConfig};
use ve_ml::FeatureBlock;

/// Index of the `(i, j)` pair (`i < j`) in a condensed upper-triangular
/// buffer over `n` items.
#[inline]
fn condensed_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n);
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

/// Clusters the rows of `points` into at most `num_clusters` clusters with
/// average-linkage HAC and returns the cluster index of every row.
///
/// The Lance–Williams matrix lives in a condensed upper-triangular `f32`
/// buffer (see the module docs); the weighted-average updates are computed in
/// `f64` from the stored operands and rounded back to `f32`.
///
/// # Panics
/// Panics if `points` has no rows or `num_clusters == 0`.
pub fn hac_average_linkage(points: &FeatureBlock, num_clusters: usize) -> Vec<usize> {
    assert!(!points.is_empty(), "cannot cluster an empty set");
    assert!(num_clusters > 0, "need at least one cluster");
    let n = points.rows();
    let target = num_clusters.min(n);

    // Condensed upper triangle: entry (i, j) with i < j lives at
    // `condensed_index(n, i, j)`. Seeded from the blocked f32 pairwise
    // kernel; the full square f32 matrix is freed right after the copy, so
    // peak memory is 6 bytes/pair and steady state 2 bytes/pair (vs the
    // dense reference's 8).
    let base = points.pairwise_sq_distances(points);
    let mut dist = vec![0.0f32; n * (n - 1) / 2];
    for i in 0..n.saturating_sub(1) {
        let row = base.row(i);
        let offset = condensed_index(n, i, i + 1);
        dist[offset..offset + (n - i - 1)].copy_from_slice(&row[i + 1..]);
    }
    drop(base);

    let mut active: Vec<bool> = vec![true; n];
    let mut sizes: Vec<usize> = vec![1; n];
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut num_active = n;

    // Cached row minima over the upper triangle: for every active slot i,
    // the smallest distance to an active slot j > i (first j wins ties).
    let mut min_d = vec![f32::INFINITY; n];
    let mut min_j = vec![usize::MAX; n];
    let recompute_row = |dist: &[f32], active: &[bool], i: usize| -> (f32, usize) {
        let mut best = f32::INFINITY;
        let mut best_j = usize::MAX;
        let offset = i * n - i * (i + 1) / 2;
        for (j, &a) in active.iter().enumerate().skip(i + 1) {
            if !a {
                continue;
            }
            let d = dist[offset + (j - i - 1)];
            if d < best {
                best = d;
                best_j = j;
            }
        }
        (best, best_j)
    };
    for i in 0..n {
        let (d, j) = recompute_row(&dist, &active, i);
        min_d[i] = d;
        min_j[i] = j;
    }

    while num_active > target {
        // Closest pair = first active row attaining the global minimum of the
        // cached row minima (strict < ⇒ lexicographically first pair wins).
        let mut bi = usize::MAX;
        let mut bd = f32::INFINITY;
        for (i, &a) in active.iter().enumerate() {
            if a && min_j[i] != usize::MAX && min_d[i] < bd {
                bd = min_d[i];
                bi = i;
            }
        }
        if bi == usize::MAX {
            break;
        }
        let (i, j) = (bi, min_j[bi]);

        // Lance–Williams update of row/column i to represent i ∪ j.
        let (ni, nj) = (sizes[i] as f64, sizes[j] as f64);
        let inv = 1.0 / (ni + nj);
        for (k, &alive) in active.iter().enumerate() {
            if !alive || k == i || k == j {
                continue;
            }
            let ik = condensed_index(n, i.min(k), i.max(k));
            let jk = condensed_index(n, j.min(k), j.max(k));
            dist[ik] = ((ni * dist[ik] as f64 + nj * dist[jk] as f64) * inv) as f32;
        }
        sizes[i] += sizes[j];
        active[j] = false;
        num_active -= 1;
        let moved = std::mem::take(&mut members[j]);
        members[i].extend(moved);

        // Repair the cached minima.
        let (d, jj) = recompute_row(&dist, &active, i);
        min_d[i] = d;
        min_j[i] = jj;
        for k in 0..n {
            if !active[k] || k == i {
                continue;
            }
            if k < i {
                let nd = dist[condensed_index(n, k, i)];
                if min_j[k] == j {
                    // Its minimum pointed at the vanished slot.
                    let (d, jj) = recompute_row(&dist, &active, k);
                    min_d[k] = d;
                    min_j[k] = jj;
                } else if min_j[k] == i {
                    if nd <= min_d[k] {
                        min_d[k] = nd;
                    } else {
                        let (d, jj) = recompute_row(&dist, &active, k);
                        min_d[k] = d;
                        min_j[k] = jj;
                    }
                } else if nd < min_d[k] || (nd == min_d[k] && i < min_j[k]) {
                    min_d[k] = nd;
                    min_j[k] = i;
                }
            } else if k < j && min_j[k] == j {
                // Row k (i < k < j) lost its minimum column.
                let (d, jj) = recompute_row(&dist, &active, k);
                min_d[k] = d;
                min_j[k] = jj;
            }
        }
    }

    // Assign dense cluster ids in slot order, matching the naive reference.
    let mut assignment = vec![0usize; n];
    let mut next = 0usize;
    for (ci, cluster) in members.iter().enumerate() {
        if !active[ci] {
            continue;
        }
        for &p in cluster {
            assignment[p] = next;
        }
        next += 1;
    }
    assignment
}

/// The previous full-square-`f64`-matrix implementation, kept as the
/// reference the condensed representation is pinned against (8 bytes/pair
/// steady state; prefer [`hac_average_linkage`]).
pub fn hac_average_linkage_dense(points: &FeatureBlock, num_clusters: usize) -> Vec<usize> {
    assert!(!points.is_empty(), "cannot cluster an empty set");
    assert!(num_clusters > 0, "need at least one cluster");
    let n = points.rows();
    let target = num_clusters.min(n);

    // Full symmetric distance matrix in f64 (the Lance–Williams updates stay
    // in f64 so repeated weighted averaging does not drift).
    let base = points.pairwise_sq_distances(points);
    let mut dist = vec![0.0f64; n * n];
    for (d, &b) in dist.iter_mut().zip(base.as_slice()) {
        *d = b as f64;
    }
    // The f32 matrix is only the seed for the f64 working copy; free it now
    // so peak memory on this O(n²) path is 8 bytes/pair, not 12.
    drop(base);

    let mut active: Vec<bool> = vec![true; n];
    let mut sizes: Vec<usize> = vec![1; n];
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut num_active = n;

    // Cached row minima over the upper triangle: for every active slot i,
    // the smallest distance to an active slot j > i (first j wins ties).
    let mut min_d = vec![f64::INFINITY; n];
    let mut min_j = vec![usize::MAX; n];
    let recompute_row = |dist: &[f64], active: &[bool], i: usize| -> (f64, usize) {
        let mut best = f64::INFINITY;
        let mut best_j = usize::MAX;
        for (j, &a) in active.iter().enumerate().skip(i + 1) {
            if !a {
                continue;
            }
            let d = dist[i * n + j];
            if d < best {
                best = d;
                best_j = j;
            }
        }
        (best, best_j)
    };
    for i in 0..n {
        let (d, j) = recompute_row(&dist, &active, i);
        min_d[i] = d;
        min_j[i] = j;
    }

    while num_active > target {
        // Closest pair = first active row attaining the global minimum of the
        // cached row minima (strict < ⇒ lexicographically first pair wins).
        let mut bi = usize::MAX;
        let mut bd = f64::INFINITY;
        for (i, &a) in active.iter().enumerate() {
            if a && min_j[i] != usize::MAX && min_d[i] < bd {
                bd = min_d[i];
                bi = i;
            }
        }
        if bi == usize::MAX {
            break;
        }
        let (i, j) = (bi, min_j[bi]);

        // Lance–Williams update of row/column i to represent i ∪ j.
        let (ni, nj) = (sizes[i] as f64, sizes[j] as f64);
        let inv = 1.0 / (ni + nj);
        for k in 0..n {
            if !active[k] || k == i || k == j {
                continue;
            }
            let nd = (ni * dist[i * n + k] + nj * dist[j * n + k]) * inv;
            dist[i * n + k] = nd;
            dist[k * n + i] = nd;
        }
        sizes[i] += sizes[j];
        active[j] = false;
        num_active -= 1;
        let moved = std::mem::take(&mut members[j]);
        members[i].extend(moved);

        // Repair the cached minima.
        let (d, jj) = recompute_row(&dist, &active, i);
        min_d[i] = d;
        min_j[i] = jj;
        for k in 0..n {
            if !active[k] || k == i {
                continue;
            }
            if k < i {
                let nd = dist[k * n + i];
                if min_j[k] == j {
                    // Its minimum pointed at the vanished slot.
                    let (d, jj) = recompute_row(&dist, &active, k);
                    min_d[k] = d;
                    min_j[k] = jj;
                } else if min_j[k] == i {
                    if nd <= min_d[k] {
                        min_d[k] = nd;
                    } else {
                        let (d, jj) = recompute_row(&dist, &active, k);
                        min_d[k] = d;
                        min_j[k] = jj;
                    }
                } else if nd < min_d[k] || (nd == min_d[k] && i < min_j[k]) {
                    min_d[k] = nd;
                    min_j[k] = i;
                }
            } else if k < j && min_j[k] == j {
                // Row k (i < k < j) lost its minimum column.
                let (d, jj) = recompute_row(&dist, &active, k);
                min_d[k] = d;
                min_j[k] = jj;
            }
        }
    }

    // Assign dense cluster ids in slot order, matching the naive reference.
    let mut assignment = vec![0usize; n];
    let mut next = 0usize;
    for (ci, cluster) in members.iter().enumerate() {
        if !active[ci] {
            continue;
        }
        for &p in cluster {
            assignment[p] = next;
        }
        next += 1;
    }
    assignment
}

/// Cluster-Margin selection using HAC for the diversity stage (the original
/// algorithm's clustering choice). Margin filtering and the ascending-size
/// round-robin stage are identical to [`crate::cluster_margin_selection`].
pub fn cluster_margin_selection_hac(
    features: &FeatureBlock,
    probs: &FeatureBlock,
    budget: usize,
    cfg: &ClusterMarginConfig,
) -> Vec<usize> {
    if features.is_empty() || budget == 0 {
        return Vec::new();
    }
    if !probs.is_empty() {
        assert_eq!(
            probs.rows(),
            features.rows(),
            "probability rows must match candidates"
        );
    }
    let margins = margins_of(probs, features.rows());
    let pool_size = (cfg.margin_pool_multiplier.max(1) * budget).min(features.rows());
    let mut order: Vec<usize> = (0..features.rows()).collect();
    order.sort_by(|&a, &b| margins[a].partial_cmp(&margins[b]).expect("NaN margin"));
    let pool: Vec<usize> = order.into_iter().take(pool_size).collect();

    let k = (cfg.clusters_per_budget.max(1) * budget)
        .min(pool.len())
        .max(1);
    let pool_block = features.gather(&pool);
    let assignment = hac_average_linkage(&pool_block, k);

    let num_clusters = assignment.iter().copied().max().unwrap_or(0) + 1;
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); num_clusters];
    for (pos, &cand) in pool.iter().enumerate() {
        clusters[assignment[pos]].push(cand);
    }
    for cluster in &mut clusters {
        cluster.sort_by(|&a, &b| margins[a].partial_cmp(&margins[b]).expect("NaN margin"));
    }
    clusters.retain(|c| !c.is_empty());
    clusters.sort_by_key(|c| c.len());

    round_robin(&clusters, budget.min(pool.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(rows: &[Vec<f32>]) -> FeatureBlock {
        FeatureBlock::from_nested(rows)
    }

    fn three_blobs() -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        for (cx, cy) in [(0.0f32, 0.0f32), (10.0, 0.0), (0.0, 10.0)] {
            for i in 0..6 {
                out.push(vec![cx + i as f32 * 0.05, cy - i as f32 * 0.05]);
            }
        }
        out
    }

    #[test]
    fn hac_recovers_well_separated_blobs() {
        let points = block(&three_blobs());
        let assignment = hac_average_linkage(&points, 3);
        // Every blob must map to exactly one cluster id.
        for blob in 0..3 {
            let ids: std::collections::HashSet<usize> =
                (0..6).map(|i| assignment[blob * 6 + i]).collect();
            assert_eq!(
                ids.len(),
                1,
                "blob {blob} split across clusters: {assignment:?}"
            );
        }
        // And the three blobs map to three different ids.
        let distinct: std::collections::HashSet<usize> = assignment.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn hac_with_one_cluster_puts_everything_together() {
        let points = block(&three_blobs());
        let assignment = hac_average_linkage(&points, 1);
        assert!(assignment.iter().all(|&c| c == 0));
    }

    #[test]
    fn hac_with_more_clusters_than_points_is_identity_like() {
        let points = block(&[vec![0.0f32], vec![1.0], vec![2.0]]);
        let assignment = hac_average_linkage(&points, 10);
        let distinct: std::collections::HashSet<usize> = assignment.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn hac_cluster_margin_spreads_across_blobs() {
        let points = block(&three_blobs());
        let probs = block(&vec![vec![0.5, 0.5]; 18]);
        // k = budget = 3 clusters: HAC recovers exactly the three blobs, so
        // every pick lands in a different blob by construction (at the
        // default k = 2×budget the per-blob sub-splits make the ascending-
        // size round-robin order tie-break-dependent).
        let cfg = ClusterMarginConfig {
            clusters_per_budget: 1,
            ..ClusterMarginConfig::default()
        };
        let picks = cluster_margin_selection_hac(&points, &probs, 3, &cfg);
        assert_eq!(picks.len(), 3);
        let blobs: std::collections::HashSet<usize> = picks.iter().map(|&i| i / 6).collect();
        assert_eq!(blobs.len(), 3, "one pick per blob expected: {picks:?}");
    }

    #[test]
    fn hac_cluster_margin_prefers_uncertain_candidates() {
        let points = block(&three_blobs());
        // Blob 0 uncertain, blobs 1-2 confident.
        let probs: Vec<Vec<f32>> = (0..18)
            .map(|i| {
                if i < 6 {
                    vec![0.51, 0.49]
                } else {
                    vec![0.95, 0.05]
                }
            })
            .collect();
        let cfg = ClusterMarginConfig {
            margin_pool_multiplier: 2,
            ..ClusterMarginConfig::default()
        };
        let picks = cluster_margin_selection_hac(&points, &block(&probs), 3, &cfg);
        assert!(
            picks.iter().all(|&i| i < 6),
            "picks must come from the uncertain blob: {picks:?}"
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn hac_rejects_empty_input() {
        hac_average_linkage(&FeatureBlock::empty(2), 2);
    }

    #[test]
    fn condensed_index_covers_the_upper_triangle() {
        let n = 7;
        let mut seen = vec![false; n * (n - 1) / 2];
        for i in 0..n {
            for j in (i + 1)..n {
                let idx = condensed_index(n, i, j);
                assert!(!seen[idx], "({i},{j}) collided at {idx}");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every slot addressed");
    }

    /// The satellite equivalence test: the condensed f32 representation must
    /// reproduce the dense f64 reference's merges/selections bit-for-bit at
    /// n = 1,000 on a benchmark-shaped input (64-dim uniform features,
    /// target 50 — the `bench_acquisition` HAC configuration).
    #[test]
    fn condensed_matches_dense_reference_at_n_1000() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (n, dim) = (1_000, 64);
        let mut rng = StdRng::seed_from_u64(11);
        let data: Vec<f32> = (0..n * dim).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect();
        let points = FeatureBlock::from_vec(n, dim, data);
        assert_eq!(
            hac_average_linkage(&points, 50),
            hac_average_linkage_dense(&points, 50),
        );
    }

    #[test]
    fn agrees_with_kmeans_variant_on_budget_and_uniqueness() {
        let points = block(&three_blobs());
        let picks = cluster_margin_selection_hac(
            &points,
            &FeatureBlock::empty(0),
            7,
            &ClusterMarginConfig::default(),
        );
        assert_eq!(picks.len(), 7);
        let unique: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(unique.len(), picks.len());
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// The seed implementation, verbatim: recompute every cluster-pair
        /// average distance from member pairs on every merge scan.
        fn naive_hac(points: &FeatureBlock, num_clusters: usize) -> Vec<usize> {
            let n = points.rows();
            let target = num_clusters.min(n);
            // Use the same base f32 distances as the optimized kernel so the
            // comparison isolates the *algorithm* (Lance–Williams vs full
            // recompute), not distance-kernel rounding.
            let base = points.pairwise_sq_distances(points);
            let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
            let mut active: Vec<bool> = vec![true; n];
            let mut num_active = n;
            let cluster_distance = |a: &[usize], b: &[usize]| -> f64 {
                let mut total = 0.0f64;
                for &i in a {
                    for &j in b {
                        total += base.get(i, j) as f64;
                    }
                }
                total / (a.len() * b.len()) as f64
            };
            while num_active > target {
                let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
                for i in 0..n {
                    if !active[i] {
                        continue;
                    }
                    for j in (i + 1)..n {
                        if !active[j] {
                            continue;
                        }
                        let d = cluster_distance(&members[i], &members[j]);
                        if d < best.2 {
                            best = (i, j, d);
                        }
                    }
                }
                let (i, j, _) = best;
                if i == usize::MAX {
                    break;
                }
                let moved = std::mem::take(&mut members[j]);
                members[i].extend(moved);
                active[j] = false;
                num_active -= 1;
            }
            let mut assignment = vec![0usize; n];
            let mut next = 0usize;
            for (ci, cluster) in members.iter().enumerate() {
                if !active[ci] {
                    continue;
                }
                for &p in cluster {
                    assignment[p] = next;
                }
                next += 1;
            }
            assignment
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn lance_williams_matches_naive_recompute(
                rows in proptest::collection::vec(
                    proptest::collection::vec(-10.0f32..10.0, 4), 2..64),
                clusters in 1usize..8,
            ) {
                let points = FeatureBlock::from_nested(&rows);
                let fast = hac_average_linkage(&points, clusters);
                let slow = naive_hac(&points, clusters);
                prop_assert_eq!(fast, slow);
            }

            #[test]
            fn condensed_matches_dense_reference(
                rows in proptest::collection::vec(
                    proptest::collection::vec(-10.0f32..10.0, 6), 2..96),
                clusters in 1usize..10,
            ) {
                let points = FeatureBlock::from_nested(&rows);
                prop_assert_eq!(
                    hac_average_linkage(&points, clusters),
                    hac_average_linkage_dense(&points, clusters)
                );
            }

            #[test]
            fn hac_selection_equals_naive_pipeline(
                rows in proptest::collection::vec(
                    proptest::collection::vec(-6.0f32..6.0, 3), 4..48),
                budget in 1usize..6,
            ) {
                // End-to-end: the HAC cluster-margin stage built on the
                // optimized clustering must produce valid, unique picks.
                let points = FeatureBlock::from_nested(&rows);
                let picks = cluster_margin_selection_hac(
                    &points,
                    &FeatureBlock::empty(0),
                    budget,
                    &ClusterMarginConfig::default(),
                );
                prop_assert!(picks.len() <= budget.min(rows.len()));
                let unique: std::collections::HashSet<_> = picks.iter().collect();
                prop_assert_eq!(unique.len(), picks.len());
                prop_assert!(picks.iter().all(|&i| i < rows.len()));
            }
        }
    }
}
