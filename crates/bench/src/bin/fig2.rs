//! Figure 2 — end-to-end: average F1 vs cumulative visible latency after 100
//! Explore steps (Deer, K20, K20 (skew)).
//!
//! Points plotted per dataset:
//! * `Random (feat)` — serial schedule, random sampling, one point per
//!   candidate feature;
//! * `Coreset-PP (feat)` — serial schedule, Coreset sampling, with the
//!   preprocessing time to extract that feature from every video included;
//! * `VE-lazy (X)` — full VOCALExplore selection (VE-sample + rising bandit)
//!   without the scheduling optimizations, incremental extraction of
//!   `X ∈ {10, 50, 100}` candidate videos per active-learning call;
//! * `VE-full` — all scheduling optimizations (the paper's headline point:
//!   near-best F1 at the lowest visible latency).
//!
//! ```text
//! cargo run --release -p ve-bench --bin fig2 [-- --full]
//! ```

use ve_al::VeSampleConfig;
use ve_bench::{
    print_header, print_row, run_averaged, with_fixed_feature, with_sampling, with_system, Profile,
};
use vocalexplore::prelude::*;
use vocalexplore::{PreprocessPolicy, SamplingPolicy};

fn main() {
    let profile = Profile::from_args();
    println!(
        "Figure 2: average F1 vs cumulative visible latency after {} Explore steps \
         ({} seeds, T_user = 10 s)\n",
        profile.iterations, profile.seeds
    );

    for dataset in [DatasetName::Deer, DatasetName::K20, DatasetName::K20Skew] {
        println!("--- {dataset} ---");
        let widths = [24, 9, 22];
        print_header(&["Configuration", "F1", "cum. visible latency"], &widths);

        // Random baseline, serial schedule, one point per feature.
        for extractor in ExtractorId::all() {
            let outcome = run_averaged(&profile, dataset, |cfg| {
                let cfg = with_sampling(cfg, SamplingPolicy::Fixed(AcquisitionKind::Random));
                let cfg = with_fixed_feature(cfg, extractor);
                with_system(cfg, |s| s.with_strategy(SchedulerStrategy::Serial))
            });
            print_row(
                &[
                    format!("Random ({extractor})"),
                    format!("{:.3}", outcome.final_f1),
                    format!("{:.0} s", outcome.cumulative_visible_latency),
                ],
                &widths,
            );
        }

        // Coreset with full preprocessing, one point per feature.
        for extractor in ExtractorId::all() {
            let outcome = run_averaged(&profile, dataset, |cfg| {
                let cfg = with_sampling(cfg, SamplingPolicy::Fixed(AcquisitionKind::Coreset));
                let cfg = with_fixed_feature(cfg, extractor);
                with_system(cfg, |s| {
                    s.with_strategy(SchedulerStrategy::Serial)
                        .with_preprocess(PreprocessPolicy::AllVideos)
                })
            });
            print_row(
                &[
                    format!("Coreset-PP ({extractor})"),
                    format!("{:.3}", outcome.final_f1),
                    format!("{:.0} s", outcome.cumulative_visible_latency),
                ],
                &widths,
            );
        }

        // VE-lazy with incremental extraction of X candidate videos.
        for x in [10usize, 50, 100] {
            let outcome = run_averaged(&profile, dataset, |cfg| {
                let cfg = with_sampling(cfg, SamplingPolicy::VeSample(VeSampleConfig::coreset()));
                with_system(cfg, |s| {
                    s.with_strategy(SchedulerStrategy::VePartial)
                        .with_extra_candidates(x)
                })
            });
            print_row(
                &[
                    format!("VE-lazy (X={x})"),
                    format!("{:.3}", outcome.final_f1),
                    format!("{:.0} s", outcome.cumulative_visible_latency),
                ],
                &widths,
            );
        }

        // VE-full: everything on, eager extraction instead of X.
        let outcome = run_averaged(&profile, dataset, |cfg| {
            with_system(cfg, |s| {
                s.with_strategy(SchedulerStrategy::VeFull)
                    .with_extra_candidates(0)
            })
        });
        print_row(
            &[
                "VE-full".to_string(),
                format!("{:.3}", outcome.final_f1),
                format!("{:.0} s", outcome.cumulative_visible_latency),
            ],
            &widths,
        );
        println!();
    }
    println!(
        "Expected shape: VE-full sits at (near-)best F1 with the lowest cumulative visible\n\
         latency; Coreset-PP pays a large preprocessing cost; Random is cheap but loses F1 on\n\
         the skewed datasets and depends heavily on which feature happens to be chosen."
    );
}
