//! A collection of video clips with id assignment and lookup, standing in for
//! the user's directory of video files (`AddVideo(path)` in the paper's API).

#![allow(clippy::disallowed_types)] // HashMap by design: order-exposing uses are policed by ve-lint nondeterministic-iteration

use crate::types::{VideoClip, VideoId};
use std::collections::HashMap;

/// An in-memory corpus of video clips.
#[derive(Debug, Clone, Default)]
pub struct VideoCorpus {
    videos: Vec<VideoClip>,
    by_id: HashMap<VideoId, usize>,
    next_id: u64,
}

impl VideoCorpus {
    /// Creates an empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a clip, assigning it a fresh [`VideoId`] (any id already present
    /// in the clip is overwritten). Returns the assigned id.
    pub fn add(&mut self, mut clip: VideoClip) -> VideoId {
        let id = VideoId(self.next_id);
        self.next_id += 1;
        clip.id = id;
        self.by_id.insert(id, self.videos.len());
        self.videos.push(clip);
        id
    }

    /// Adds a clip preserving its existing id.
    ///
    /// # Panics
    /// Panics if the id is already present.
    pub fn add_with_id(&mut self, clip: VideoClip) -> VideoId {
        let id = clip.id;
        assert!(
            !self.by_id.contains_key(&id),
            "video id {id} already present"
        );
        self.next_id = self.next_id.max(id.0 + 1);
        self.by_id.insert(id, self.videos.len());
        self.videos.push(clip);
        id
    }

    /// Number of videos.
    pub fn len(&self) -> usize {
        self.videos.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.videos.is_empty()
    }

    /// Looks up a video by id.
    pub fn get(&self, id: VideoId) -> Option<&VideoClip> {
        self.by_id.get(&id).map(|&i| &self.videos[i])
    }

    /// All videos in insertion order.
    pub fn videos(&self) -> &[VideoClip] {
        &self.videos
    }

    /// All video ids in insertion order.
    pub fn ids(&self) -> Vec<VideoId> {
        self.videos.iter().map(|v| v.id).collect()
    }

    /// Total duration of the corpus in seconds.
    pub fn total_duration(&self) -> f64 {
        self.videos.iter().map(|v| v.duration).sum()
    }

    /// Per-class count of videos whose ground truth contains the class
    /// anywhere, over a vocabulary of `num_classes` classes.
    pub fn class_video_counts(&self, num_classes: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_classes];
        for v in &self.videos {
            let mut seen = vec![false; num_classes];
            for seg in &v.segments {
                for &c in &seg.classes {
                    if c < num_classes && !seen[c] {
                        seen[c] = true;
                        counts[c] += 1;
                    }
                }
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Segment, TimeRange};

    fn clip(duration: f64, classes: Vec<usize>) -> VideoClip {
        VideoClip {
            id: VideoId(0),
            path: "x.mp4".into(),
            duration,
            start_timestamp: 0.0,
            segments: vec![Segment {
                range: TimeRange::new(0.0, duration),
                classes,
                latent_seed: 0,
            }],
        }
    }

    #[test]
    fn add_assigns_sequential_ids() {
        let mut c = VideoCorpus::new();
        let a = c.add(clip(10.0, vec![0]));
        let b = c.add(clip(10.0, vec![1]));
        assert_eq!(a, VideoId(0));
        assert_eq!(b, VideoId(1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(a).unwrap().id, a);
        assert!(c.get(VideoId(99)).is_none());
    }

    #[test]
    fn add_with_id_preserves_and_advances_counter() {
        let mut c = VideoCorpus::new();
        let mut v = clip(5.0, vec![0]);
        v.id = VideoId(10);
        c.add_with_id(v);
        let next = c.add(clip(5.0, vec![1]));
        assert_eq!(next, VideoId(11));
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn add_with_id_rejects_duplicates() {
        let mut c = VideoCorpus::new();
        let mut v = clip(5.0, vec![0]);
        v.id = VideoId(3);
        c.add_with_id(v.clone());
        c.add_with_id(v);
    }

    #[test]
    fn aggregates() {
        let mut c = VideoCorpus::new();
        c.add(clip(10.0, vec![0]));
        c.add(clip(20.0, vec![0, 1]));
        c.add(clip(30.0, vec![2]));
        assert_eq!(c.total_duration(), 60.0);
        assert_eq!(c.class_video_counts(3), vec![2, 1, 1]);
        assert_eq!(c.ids(), vec![VideoId(0), VideoId(1), VideoId(2)]);
    }

    #[test]
    fn empty_corpus() {
        let c = VideoCorpus::new();
        assert!(c.is_empty());
        assert_eq!(c.total_duration(), 0.0);
        assert_eq!(c.class_video_counts(2), vec![0, 0]);
    }
}
