//! Ablation: the frequency-test threshold `m` (Section 3.1 / Appendix A).
//!
//! The `Freq.` variant of `VE-sample` uses the binomial bound of Appendix A
//! instead of the Anderson–Darling test. The paper notes it is "slightly more
//! conservative and takes longer to switch" and that adjusting `m` moves the
//! switch point. This ablation sweeps `m ∈ {1.0, 1.5, 2.0}` on the skewed
//! datasets and reports when the policy switches to active learning and what
//! final F1 / `S_max` it reaches, alongside the Anderson–Darling variant.
//!
//! ```text
//! cargo run --release -p ve-bench --bin skew_threshold [-- --full]
//! ```

use ve_al::VeSampleConfig;
use ve_bench::{
    best_extractor, print_header, print_row, with_fixed_feature, with_sampling, Profile,
};
use ve_stats::mean;
use vocalexplore::prelude::*;
use vocalexplore::SamplingPolicy;

fn main() {
    let profile = Profile::from_args();
    println!(
        "Skew-test ablation on the skewed datasets ({} iterations x {} seeds)\n",
        profile.iterations, profile.seeds
    );

    let variants: Vec<(String, SamplingPolicy)> = std::iter::once((
        "Anderson-Darling".to_string(),
        SamplingPolicy::VeSample(VeSampleConfig::cluster_margin()),
    ))
    .chain([1.0, 1.5, 2.0].into_iter().map(|m| {
        (
            format!("Freq. m={m}"),
            SamplingPolicy::VeSample(VeSampleConfig::frequency(m)),
        )
    }))
    .collect();

    for dataset in [DatasetName::Deer, DatasetName::K20Skew, DatasetName::Bdd] {
        let feature = best_extractor(dataset);
        println!("--- {dataset} (feature {feature}) ---");
        let widths = [18, 9, 9, 20];
        print_header(&["Test", "F1", "S_max", "switch at label #"], &widths);
        for (name, sampling) in &variants {
            let mut f1s = Vec::new();
            let mut smaxes = Vec::new();
            let mut switches = Vec::new();
            for seed in 0..profile.seeds {
                let cfg = with_fixed_feature(
                    with_sampling(profile.session(dataset, seed * 101 + 7), *sampling),
                    feature,
                );
                let outcome = ve_bench::run_session(cfg);
                f1s.push(outcome.mean_f1_last(3));
                smaxes.push(outcome.final_s_max());
                if let Some(r) = outcome
                    .records
                    .iter()
                    .find(|r| r.acquisition != AcquisitionKind::Random)
                {
                    switches.push(r.labels_total as f64);
                }
            }
            let switch = if switches.is_empty() {
                "never".to_string()
            } else {
                format!("{:.0}", mean(&switches))
            };
            print_row(
                &[
                    name.clone(),
                    format!("{:.3}", mean(&f1s)),
                    format!("{:.2}", mean(&smaxes)),
                    switch,
                ],
                &widths,
            );
        }
        println!();
    }
    println!(
        "Expected shape: the frequency test switches later than Anderson-Darling; larger m\n\
         requires a larger imbalance ratio and therefore switches later still (or never)."
    );
}
