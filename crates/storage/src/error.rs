//! Error type for the storage manager.

/// Errors surfaced by storage operations.
#[derive(Debug)]
pub enum StorageError {
    /// The snapshot buffer is malformed or truncated.
    Corrupt(String),
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// A referenced entity (video, feature, model) does not exist.
    NotFound(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::NotFound(what) => write!(f, "not found: {what}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert!(StorageError::Corrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
        assert!(StorageError::NotFound("video v3".into())
            .to_string()
            .contains("video v3"));
        let io: StorageError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
    }
}
