//! Model-version-aware probability cache.
//!
//! Cluster-Margin and Uncertainty selection score the candidate set with
//! `predict_proba_batch` on every `explore` call, even though between two
//! calls the model often has not changed and the candidate index grew by only
//! a handful of appended rows. The [`ProbabilityCache`] makes that inference
//! incremental: it stores one probability row per candidate-index row,
//! positionally parallel to the [`FeatureBlock`] it was computed from, and
//! recomputes only the rows that are not yet cached.
//!
//! # Keying and invalidation contract
//!
//! The cache key is `(model version, index epoch)`:
//!
//! * **Model version** is the [`ve_storage::ModelRegistry`] version of the
//!   extractor's latest model. Any publish bumps it, so a retrain invalidates
//!   the cache wholesale — cached rows from an older model are never served.
//! * **Index epoch** is [`crate::AcquisitionIndex::epoch`], bumped whenever
//!   existing rows may have moved (rebuild, merge splice) but *not* on tail
//!   appends. On an unchanged epoch the cached prefix stays positionally
//!   valid and only appended (or newly requested) rows are computed.
//! * The ALM additionally calls [`ProbabilityCache::invalidate`] whenever it
//!   replaces the index object (extractor or clip-length switch): a fresh
//!   index restarts its epoch counter, so the epoch alone cannot distinguish
//!   two different indexes.
//!
//! # Determinism contract
//!
//! **Bit-identical.** Each cached row is produced by exactly the computation
//! `predict_proba(scaler.transform(row))` that
//! [`crate::ModelManager::predict_proba_batch`] runs — per-row inference is
//! independent of batch composition and of `compute_threads` — so selections
//! driven by cached probabilities equal the uncached ones bit for bit. The
//! interleaving property tests in `tests/acquisition_index_equivalence.rs`
//! and `tests/session_cache_equivalence.rs` pin this.

use crate::model_manager::ModelManager;
use ve_features::ExtractorId;
use ve_ml::{Classifier, FeatureBlock, FeatureBlockBuilder};

/// Hit/miss accounting of the cache (exposed through the ALM for tests, CI
/// and the training benchmark).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbCacheStats {
    /// Requested rows served from the cache.
    pub hit_rows: u64,
    /// Requested rows computed (and then cached) on demand.
    pub miss_rows: u64,
    /// Wholesale invalidations (key change or explicit reset).
    pub invalidations: u64,
}

/// Positional probability rows for one `(model version, index epoch)` pair
/// (see module docs for the contract).
#[derive(Debug, Default)]
pub struct ProbabilityCache {
    /// `(model version, index epoch)` the cached rows belong to.
    key: Option<(u64, u64)>,
    /// Probability-row width (the model's class count).
    num_classes: usize,
    /// `rows × num_classes` probabilities, parallel to the index block.
    probs: Vec<f32>,
    /// Per-row validity, parallel to the index block.
    valid: Vec<bool>,
    stats: ProbCacheStats,
}

impl ProbabilityCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hit/miss counters accumulated so far.
    pub fn stats(&self) -> ProbCacheStats {
        self.stats
    }

    /// Drops every cached row. Called by the ALM when it replaces its index
    /// object, because a fresh index restarts the epoch counter and could
    /// otherwise collide with the cached key.
    pub fn invalidate(&mut self) {
        if self.key.is_some() {
            self.stats.invalidations += 1;
        }
        self.key = None;
        self.probs.clear();
        self.valid.clear();
    }

    /// Probability rows for `eligible` (ascending row indices into `block`),
    /// gathered into a fresh `eligible.len() × num_classes` block — the same
    /// shape `predict_proba_batch(block.gather(eligible))` would produce, and
    /// bit-identical to it. Returns an empty block when the extractor has no
    /// model yet (matching `predict_proba_batch` on a missing model; nothing
    /// is cached in that case).
    pub fn probs_for(
        &mut self,
        block: &FeatureBlock,
        epoch: u64,
        eligible: &[usize],
        mm: &ModelManager,
        extractor: ExtractorId,
    ) -> FeatureBlock {
        let Some((version, fitted)) = mm.latest_versioned(extractor) else {
            return FeatureBlock::empty(0);
        };
        let key = (version, epoch);
        if self.key != Some(key) {
            if self.key.is_some() {
                self.stats.invalidations += 1;
            }
            self.key = Some(key);
            self.num_classes = fitted.model.num_classes();
            self.probs.clear();
            self.valid.clear();
        }
        // Tail appends since the last call: grow the arrays, new rows invalid.
        if self.valid.len() < block.rows() {
            self.valid.resize(block.rows(), false);
            self.probs.resize(block.rows() * self.num_classes, 0.0);
        }
        let missing: Vec<usize> = eligible
            .iter()
            .copied()
            .filter(|&r| !self.valid[r])
            .collect();
        self.stats.hit_rows += (eligible.len() - missing.len()) as u64;
        self.stats.miss_rows += missing.len() as u64;
        if !missing.is_empty() {
            // Exactly the per-row computation of `predict_proba_batch`, so
            // cached and uncached probabilities are bit-identical.
            let rows = ve_sched::parallel::par_map(missing.len(), |i| {
                fitted
                    .model
                    .predict_proba(&fitted.scaler.transform(block.row(missing[i])))
            });
            for (&r, row) in missing.iter().zip(&rows) {
                self.probs[r * self.num_classes..(r + 1) * self.num_classes].copy_from_slice(row);
                self.valid[r] = true;
            }
        }
        let mut out = FeatureBlockBuilder::with_capacity(eligible.len(), self.num_classes);
        for &r in eligible {
            out.push_row(&self.probs[r * self.num_classes..(r + 1) * self.num_classes]);
        }
        out.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VocalExploreConfig;
    use crate::feature_manager::FeatureManager;
    use ve_features::FeatureSimulator;
    use ve_storage::{LabelRecord, StorageManager};
    use ve_vidsim::{Dataset, DatasetName, GroundTruthOracle, Oracle, TaskKind, TimeRange};

    fn fixture() -> (Dataset, FeatureManager, ModelManager, FeatureBlock) {
        let ds = Dataset::scaled(DatasetName::Deer, 0.15, 33);
        let sim = FeatureSimulator::new(DatasetName::Deer, 9, 33);
        let fm = FeatureManager::new(sim, StorageManager::new());
        let cfg = VocalExploreConfig::for_dataset(&ds, 33);
        let mm = ModelManager::new(cfg);
        let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);
        let labels: Vec<LabelRecord> = ds
            .train
            .videos()
            .iter()
            .take(50)
            .map(|clip| {
                let range = TimeRange::new(0.0, 1.0);
                LabelRecord {
                    vid: clip.id,
                    range,
                    classes: oracle.label(&ds.train, clip.id, &range),
                    iteration: 0,
                }
            })
            .collect();
        assert!(mm
            .train(
                ve_features::ExtractorId::R3d,
                &ds.train,
                &fm,
                &labels,
                0,
                None
            )
            .unwrap());
        let block = FeatureBlock::from_nested(
            &ds.train
                .videos()
                .iter()
                .skip(50)
                .take(40)
                .map(|clip| {
                    fm.feature_for(
                        ve_features::ExtractorId::R3d,
                        &ds.train,
                        clip.id,
                        &TimeRange::new(0.0, 1.0),
                    )
                    .unwrap()
                    .data
                })
                .collect::<Vec<_>>(),
        );
        (ds, fm, mm, block)
    }

    #[test]
    fn cached_probs_are_bit_identical_to_uncached() {
        let (_ds, _fm, mm, block) = fixture();
        let e = ve_features::ExtractorId::R3d;
        let eligible: Vec<usize> = (0..block.rows()).filter(|r| r % 3 != 1).collect();
        let uncached = mm.predict_proba_batch(e, &block.gather(&eligible));
        let mut cache = ProbabilityCache::new();
        let first = cache.probs_for(&block, 0, &eligible, &mm, e);
        let second = cache.probs_for(&block, 0, &eligible, &mm, e);
        assert_eq!(uncached.as_slice(), first.as_slice(), "cold fill");
        assert_eq!(uncached.as_slice(), second.as_slice(), "cache hit");
        let stats = cache.stats();
        assert_eq!(stats.miss_rows, eligible.len() as u64);
        assert_eq!(stats.hit_rows, eligible.len() as u64);
        assert_eq!(stats.invalidations, 0);
    }

    #[test]
    fn partial_overlap_recomputes_only_new_rows() {
        let (_ds, _fm, mm, block) = fixture();
        let e = ve_features::ExtractorId::R3d;
        let mut cache = ProbabilityCache::new();
        let first: Vec<usize> = (0..20).collect();
        cache.probs_for(&block, 0, &first, &mm, e);
        let wider: Vec<usize> = (0..30).collect();
        let got = cache.probs_for(&block, 0, &wider, &mm, e);
        let stats = cache.stats();
        assert_eq!(stats.miss_rows, 30, "20 cold + 10 new");
        assert_eq!(stats.hit_rows, 20);
        let want = mm.predict_proba_batch(e, &block.gather(&wider));
        assert_eq!(want.as_slice(), got.as_slice());
    }

    #[test]
    fn version_bump_and_epoch_bump_invalidate() {
        let (ds, fm, mm, block) = fixture();
        let e = ve_features::ExtractorId::R3d;
        let eligible: Vec<usize> = (0..block.rows()).collect();
        let mut cache = ProbabilityCache::new();
        cache.probs_for(&block, 0, &eligible, &mm, e);
        // Epoch bump (index rebuild/merge) drops every cached row.
        cache.probs_for(&block, 1, &eligible, &mm, e);
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.stats().miss_rows, 2 * eligible.len() as u64);
        // Retrain bumps the model version: cached rows are never served
        // from the older model.
        let oracle = GroundTruthOracle::new(TaskKind::SingleLabel);
        let labels: Vec<LabelRecord> = ds
            .train
            .videos()
            .iter()
            .take(60)
            .map(|clip| {
                let range = TimeRange::new(0.0, 1.0);
                LabelRecord {
                    vid: clip.id,
                    range,
                    classes: oracle.label(&ds.train, clip.id, &range),
                    iteration: 1,
                }
            })
            .collect();
        assert!(mm.train(e, &ds.train, &fm, &labels, 1, None).unwrap());
        let got = cache.probs_for(&block, 1, &eligible, &mm, e);
        assert_eq!(cache.stats().invalidations, 2);
        let want = mm.predict_proba_batch(e, &block.gather(&eligible));
        assert_eq!(want.as_slice(), got.as_slice());
    }

    #[test]
    fn no_model_yields_empty_block_and_caches_nothing() {
        let (_ds, _fm, mm, block) = fixture();
        let mut cache = ProbabilityCache::new();
        let got = cache.probs_for(&block, 0, &[0, 1], &mm, ve_features::ExtractorId::Mvit);
        assert!(got.is_empty());
        assert_eq!(cache.stats(), ProbCacheStats::default());
    }

    #[test]
    fn explicit_invalidate_resets_rows() {
        let (_ds, _fm, mm, block) = fixture();
        let e = ve_features::ExtractorId::R3d;
        let mut cache = ProbabilityCache::new();
        let eligible: Vec<usize> = (0..10).collect();
        cache.probs_for(&block, 0, &eligible, &mm, e);
        cache.invalidate();
        cache.probs_for(&block, 0, &eligible, &mm, e);
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.miss_rows, 20, "everything recomputed after reset");
        assert_eq!(stats.hit_rows, 0);
    }
}
